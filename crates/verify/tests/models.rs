//! Model-checked miniatures of the solver's concurrent subsystems.
//!
//! Compiled and run only with `RUSTFLAGS="--cfg srsf_model"`:
//!
//! ```text
//! RUSTFLAGS="--cfg srsf_model" cargo test -p srsf-verify --test models
//! ```
//!
//! Each model rebuilds one concurrency pattern from the runtime/core
//! crates in miniature — same primitives, same protocol, small enough to
//! explore exhaustively — and asserts no deadlock, no lost wakeup, and a
//! schedule-independent result across at least 1000 interleavings. The
//! `detects_*` tests seed real bugs and check the explorer finds them
//! and that a failing schedule replays deterministically.

#![cfg(srsf_model)]

use srsf_verify::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use srsf_verify::sync::{mpsc, Arc, Barrier, Condvar, Mutex, OnceLock, RwLock};
use srsf_verify::{thread, Model};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Run a model expected to fail; return the failure message.
fn expect_failure<T, F>(model: Model, f: F) -> String
where
    T: PartialEq + std::fmt::Debug + Send + 'static,
    F: Fn() -> T + Send + Sync + 'static,
{
    match catch_unwind(AssertUnwindSafe(move || model.check(f))) {
        Ok(report) => panic!("model unexpectedly passed ({} schedules)", report.schedules),
        Err(p) => {
            if let Some(s) = p.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = p.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                panic!("non-string model failure payload")
            }
        }
    }
}

/// Extract the `SRSF_MODEL_REPLAY="..."` schedule from a failure message.
fn replay_string(msg: &str) -> String {
    let tail = msg
        .split("SRSF_MODEL_REPLAY=\"")
        .nth(1)
        .unwrap_or_else(|| panic!("no replay string in failure: {msg}"));
    tail.split('"').next().unwrap().to_string()
}

// ---------------------------------------------------------------------------
// Subsystem 1: the transport matching queue (MsgQueue::recv_where).
// Two producer links feed one consumer over an mpsc channel; the consumer
// pulls frames *by tag*, buffering non-matching frames in a pending list,
// and must observe end-of-stream once all senders are gone.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Frame {
    tag: u32,
    val: u64,
}

fn recv_where(rx: &mpsc::Receiver<Frame>, pending: &mut Vec<Frame>, want: u32) -> Option<u64> {
    if let Some(pos) = pending.iter().position(|f| f.tag == want) {
        return Some(pending.remove(pos).val);
    }
    loop {
        match rx.recv() {
            Ok(f) if f.tag == want => return Some(f.val),
            Ok(f) => pending.push(f),
            Err(_) => return None,
        }
    }
}

#[test]
fn matching_queue_delivers_out_of_order_tags() {
    let report = Model::new()
        .preemption_bound(3)
        .max_schedules(50_000)
        .check(|| {
            let (tx, rx) = mpsc::channel::<Frame>();
            let tx2 = tx.clone();
            let a = thread::spawn(move || {
                for (tag, val) in [(1, 10), (2, 20), (4, 40)] {
                    tx.send(Frame { tag, val }).unwrap();
                }
            });
            let b = thread::spawn(move || {
                for (tag, val) in [(3, 30), (5, 50)] {
                    tx2.send(Frame { tag, val }).unwrap();
                }
            });
            // Consume in an order that forces pending-list buffering on most
            // schedules (per-link order is FIFO, cross-link order is not).
            let mut pending = Vec::new();
            let got: Vec<Option<u64>> = [3, 1, 5, 2, 4]
                .iter()
                .map(|&want| recv_where(&rx, &mut pending, want))
                .collect();
            a.join().unwrap();
            b.join().unwrap();
            // All senders gone and pending drained: the next match is EOF,
            // exactly how a died link surfaces in MsgQueue.
            let eof = recv_where(&rx, &mut pending, 99);
            (got, eof, pending.len())
        });
    assert_eq!(
        report.schedules >= 1000,
        true,
        "explored {}",
        report.schedules
    );
}

// ---------------------------------------------------------------------------
// Subsystem 2: the TCP transport's generation barrier (TimeoutBarrier).
// Mutex<(arrived, generation)> + Condvar, waited on with wait_timeout in
// production; in the model the timeout never fires, so a lost wakeup
// would be reported as a deadlock instead of being masked by a retry.
// ---------------------------------------------------------------------------

struct GenBarrier {
    n: usize,
    state: Mutex<(usize, u64)>,
    cv: Condvar,
}

impl GenBarrier {
    fn new(n: usize) -> Self {
        Self {
            n,
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut s = self.state.lock().unwrap();
        s.0 += 1;
        if s.0 == self.n {
            s.0 = 0;
            s.1 += 1;
            self.cv.notify_all();
            return;
        }
        let gen = s.1;
        while s.1 == gen {
            s = self
                .cv
                .wait_timeout(s, Duration::from_millis(50))
                .unwrap()
                .0;
        }
    }
}

#[test]
fn generation_barrier_has_no_lost_wakeup() {
    let report = Model::new()
        .preemption_bound(3)
        .max_schedules(50_000)
        .check(|| {
            let b = Arc::new(GenBarrier::new(3));
            let rounds = Arc::new(AtomicUsize::new(0));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let (b, rounds) = (b.clone(), rounds.clone());
                    thread::spawn(move || {
                        for _ in 0..2 {
                            b.wait();
                            rounds.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for _ in 0..2 {
                b.wait();
                rounds.fetch_add(1, Ordering::SeqCst);
            }
            for w in workers {
                w.join().unwrap();
            }
            rounds.load(Ordering::SeqCst) // 3 threads x 2 rounds on every schedule
        });
    assert!(report.schedules >= 1000, "explored {}", report.schedules);
}

// ---------------------------------------------------------------------------
// Subsystem 3: the resident world's shutdown handshake. A serve worker
// polls its command stream and an `alive` liveness flag (the model's
// analogue of recv_service_idle); the master retires it either by a
// shutdown command or by clearing the flag and dropping the channel —
// both paths must terminate with all prior work observed.
// ---------------------------------------------------------------------------

enum Cmd {
    Work(u64),
    Shutdown,
}

fn serve_poll_loop(rx: &mpsc::Receiver<Cmd>, alive: &AtomicBool) -> u64 {
    let mut acc = 0;
    loop {
        match rx.try_recv() {
            Ok(Cmd::Work(x)) => acc += x,
            Ok(Cmd::Shutdown) => break,
            Err(mpsc::TryRecvError::Disconnected) => break,
            Err(mpsc::TryRecvError::Empty) => {
                if !alive.load(Ordering::Acquire) {
                    // The flag promises no *new* work, but a command may
                    // have landed between the try_recv above and this
                    // check — drain before retiring. (Breaking here
                    // without the drain loses that command on some
                    // schedules; see detects_poll_loop_toctou.)
                    while let Ok(Cmd::Work(x)) = rx.try_recv() {
                        acc += x;
                    }
                    break;
                }
                thread::yield_now();
            }
        }
    }
    acc
}

/// The naive retire path: break as soon as the flag is observed clear.
/// Loses a command that arrived between the failed `try_recv` and the
/// flag check — the model checker catches this as a schedule-dependent
/// result.
fn serve_poll_loop_toctou(rx: &mpsc::Receiver<Cmd>, alive: &AtomicBool) -> u64 {
    let mut acc = 0;
    loop {
        match rx.try_recv() {
            Ok(Cmd::Work(x)) => acc += x,
            Ok(Cmd::Shutdown) => break,
            Err(mpsc::TryRecvError::Disconnected) => break,
            Err(mpsc::TryRecvError::Empty) => {
                if !alive.load(Ordering::Acquire) {
                    break;
                }
                thread::yield_now();
            }
        }
    }
    acc
}

#[test]
fn shutdown_by_command_drains_all_work() {
    // Two serve workers (the resident world runs one per rank), retired
    // by an explicit shutdown command after their work, as
    // shutdown_session does.
    let report = Model::new()
        .preemption_bound(3)
        .max_schedules(50_000)
        .check(|| {
            let alive = Arc::new(AtomicBool::new(true));
            let mut txs = Vec::new();
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let (tx, rx) = mpsc::channel();
                    txs.push(tx);
                    let alive = alive.clone();
                    thread::spawn(move || serve_poll_loop(&rx, &alive))
                })
                .collect();
            for (i, tx) in txs.iter().enumerate() {
                tx.send(Cmd::Work(5 + i as u64)).unwrap();
                tx.send(Cmd::Work(7)).unwrap();
            }
            for tx in &txs {
                tx.send(Cmd::Shutdown).unwrap();
            }
            // Commands precede shutdown in-stream: never a lost solve.
            workers
                .into_iter()
                .map(|w| w.join().unwrap())
                .collect::<Vec<_>>() // always [12, 13]
        });
    assert!(report.schedules >= 1000, "explored {}", report.schedules);
}

#[test]
fn shutdown_by_liveness_flag_terminates() {
    // Same two workers, retired the WorldHandle::finish() way: clear the
    // shared liveness flag, then drop the command channels.
    let report = Model::new()
        .preemption_bound(3)
        .max_schedules(50_000)
        .check(|| {
            let alive = Arc::new(AtomicBool::new(true));
            let mut txs = Vec::new();
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let (tx, rx) = mpsc::channel();
                    txs.push(tx);
                    let alive = alive.clone();
                    thread::spawn(move || serve_poll_loop(&rx, &alive))
                })
                .collect();
            for (i, tx) in txs.iter().enumerate() {
                tx.send(Cmd::Work(5 + i as u64)).unwrap();
                tx.send(Cmd::Work(7)).unwrap();
            }
            alive.store(false, Ordering::Release);
            drop(txs);
            // The in-flight commands are never lost: the poll loop drains
            // the stream before honoring the cleared flag.
            workers
                .into_iter()
                .map(|w| w.join().unwrap())
                .collect::<Vec<_>>() // always [12, 13]
        });
    assert!(report.schedules >= 1000, "explored {}", report.schedules);
}

// ---------------------------------------------------------------------------
// Subsystem 4: the work-stealing chunk claim of the colored elimination
// pool — an AtomicUsize cursor hands out box indices, each exactly once,
// and results land in per-box OnceLock slots merged in index order.
// ---------------------------------------------------------------------------

#[test]
fn work_stealing_claims_each_chunk_once() {
    const CHUNKS: usize = 5;
    let report = Model::new()
        .preemption_bound(3)
        .max_schedules(50_000)
        .check(|| {
            let next = Arc::new(AtomicUsize::new(0));
            let slots: Arc<Vec<OnceLock<usize>>> =
                Arc::new((0..CHUNKS).map(|_| OnceLock::new()).collect());
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let (next, slots) = (next.clone(), slots.clone());
                    thread::spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= CHUNKS {
                            break;
                        }
                        // The "result" depends only on the chunk, never on
                        // the claiming worker; a double claim panics here.
                        slots[i].set(i * i).expect("chunk claimed twice");
                    })
                })
                .collect();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= CHUNKS {
                    break;
                }
                slots[i].set(i * i).expect("chunk claimed twice");
            }
            for w in workers {
                w.join().unwrap();
            }
            // Deterministic row-major merge, as eliminate_color_round does.
            slots
                .iter()
                .map(|s| *s.get().expect("chunk lost"))
                .collect::<Vec<_>>()
        });
    assert!(report.schedules >= 1000, "explored {}", report.schedules);
}

// ---------------------------------------------------------------------------
// Subsystem 5: the fixed-order delta merge of the blocked solve pass
// (threaded_pass in solve.rs): workers snapshot the RHS through an
// RwLock, park their delta in a Mutex slot, and a single merger applies
// the slots in group order between two barriers. The fold below is
// non-commutative, so any schedule-dependent merge order changes the
// result and fails the cross-schedule equality check.
// ---------------------------------------------------------------------------

#[test]
fn delta_merge_order_is_schedule_independent() {
    const N: usize = 3;
    let report = Model::new()
        .preemption_bound(3)
        .max_schedules(50_000)
        .check(|| {
            let slots: Arc<Vec<Mutex<Option<u64>>>> =
                Arc::new((0..N).map(|_| Mutex::new(None)).collect());
            let shared = Arc::new(RwLock::new(1u64));
            let barrier = Arc::new(Barrier::new(N));
            let done = Arc::new(AtomicUsize::new(0));

            let worker = |gi: usize,
                          slots: Arc<Vec<Mutex<Option<u64>>>>,
                          shared: Arc<RwLock<u64>>,
                          barrier: Arc<Barrier>,
                          done: Arc<AtomicUsize>| {
                // Snapshot-read, compute a per-group delta, park it.
                let base = *shared.read().unwrap();
                *slots[gi].lock().unwrap() = Some(base + gi as u64);
                done.fetch_add(1, Ordering::Relaxed);
                barrier.wait();
                if gi == 0 {
                    // Sole merger: apply every slot in fixed group order.
                    let mut b = shared.write().unwrap();
                    for slot in slots.iter() {
                        let d = slot.lock().unwrap().take().expect("slot filled");
                        *b = *b * 3 + d; // non-commutative: order shows
                    }
                }
                barrier.wait();
                *shared.read().unwrap()
            };

            let handles: Vec<_> = (1..N)
                .map(|gi| {
                    let (s, sh, ba, d) =
                        (slots.clone(), shared.clone(), barrier.clone(), done.clone());
                    thread::spawn(move || worker(gi, s, sh, ba, d))
                })
                .collect();
            let final0 = worker(0, slots, shared, barrier, done.clone());
            let mut finals = vec![final0];
            for h in handles {
                finals.push(h.join().unwrap());
            }
            assert_eq!(done.load(Ordering::Relaxed), N);
            finals // every thread sees the same fixed-order merge result
        });
    assert!(report.schedules >= 1000, "explored {}", report.schedules);
}

// ---------------------------------------------------------------------------
// Subsystem 6: the per-neighbor eager-send completion counter of the
// distributed run_phase. A rank's phase boxes are filled by the
// work-stealing pool, then merged in fixed box order; a neighbor's update
// frame is posted the moment the last box that neighbor tracks retires
// from the merge — exactly once, never before, and carrying post-merge
// values only.
// ---------------------------------------------------------------------------

const BOXES: usize = 4;
/// Boxes the modeled neighbor tracks (its halo); the frame must list
/// exactly these, with their post-merge values, in merge order.
const TRACKED: [usize; 2] = [1, 3];

/// One phase of the eager-send protocol: pool fill (worker + main, as the
/// rank pool does), deterministic merge, completion-counter send, with
/// the neighbor receiving concurrently. `shorted_counter` seeds the bug
/// the detects test looks for: a counter that undercounts the halo by
/// one, posting the frame before the last tracked box retires.
fn eager_send_round(shorted_counter: bool) -> (Vec<u64>, Vec<(usize, u64)>) {
    let slots: Arc<Vec<OnceLock<u64>>> = Arc::new((0..BOXES).map(|_| OnceLock::new()).collect());
    let next = Arc::new(AtomicUsize::new(0));
    let w = {
        let (slots, next) = (slots.clone(), next.clone());
        thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= BOXES {
                break;
            }
            slots[i].set(i as u64 * 10 + 1).expect("box claimed twice");
        })
    };
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= BOXES {
            break;
        }
        slots[i].set(i as u64 * 10 + 1).expect("box claimed twice");
    }
    w.join().unwrap();

    // The tracking neighbor, receiving concurrently with the merge.
    let (tx, rx) = mpsc::channel::<Vec<(usize, u64)>>();
    let neighbor = thread::spawn(move || rx.recv().expect("neighbor got no frame"));

    // Fixed-order merge with the per-neighbor completion counter.
    let mut remaining = if shorted_counter {
        TRACKED.len() - 1
    } else {
        TRACKED.len()
    };
    let mut frame: Vec<(usize, u64)> = Vec::new();
    let mut merged: Vec<u64> = Vec::new();
    let mut sends = 0usize;
    for i in 0..BOXES {
        // "apply_output": the merged value differs from the raw slot, so a
        // frame built from unretired boxes is distinguishable.
        let v = *slots[i].get().expect("box lost") * 2;
        merged.push(v);
        if TRACKED.contains(&i) {
            frame.push((i, v));
            remaining = remaining.wrapping_sub(1);
            if remaining == 0 {
                sends += 1;
                tx.send(frame.clone()).unwrap();
            }
        }
    }
    assert_eq!(sends, 1, "eager send posted {sends} times, want exactly 1");
    let got = neighbor.join().unwrap();
    assert_eq!(
        got.len(),
        TRACKED.len(),
        "eager frame incomplete: posted before the last halo box retired"
    );
    for (i, v) in &got {
        assert_eq!(*v, merged[*i], "frame carries a pre-merge value");
    }
    (merged, got)
}

#[test]
fn eager_send_posts_once_after_last_halo_box() {
    let report = Model::new()
        .preemption_bound(3)
        .max_schedules(50_000)
        .check(|| eager_send_round(false));
    // The fill/merge/recv space is small enough to enumerate outright —
    // stronger than any schedule-count floor.
    assert!(
        report.exhausted && report.schedules >= 32,
        "explored {} (exhausted: {})",
        report.schedules,
        report.exhausted
    );
}

// ---------------------------------------------------------------------------
// Subsystem 7: barrier-free round transition. With the inter-round
// barrier gone from the factorization sweep, ordering rests on two
// invariants: every rank posts a frame to every neighbor every round
// (empty frames included), and tags are unique per round so the matching
// queue pairs racing frames with the right receives. A rank that blasts
// through several rounds of sends before its peer wakes must neither
// deadlock nor cross frames.
// ---------------------------------------------------------------------------

#[test]
fn barrier_free_rounds_need_no_rendezvous() {
    let report = Model::new()
        .preemption_bound(3)
        .max_schedules(50_000)
        .check(|| {
            let (tx_to_a, rx_a) = mpsc::channel::<Frame>();
            let (tx_to_b, rx_b) = mpsc::channel::<Frame>();
            let b = thread::spawn(move || {
                // B eliminates and exchanges round by round (the common
                // path: send own update, then receive the peer's).
                let mut pending = Vec::new();
                let mut got = Vec::new();
                for round in 0..3u32 {
                    tx_to_a
                        .send(Frame {
                            tag: round,
                            val: 200 + round as u64,
                        })
                        .unwrap();
                    got.push(recv_where(&rx_b, &mut pending, round).expect("frame from A"));
                }
                got
            });
            // A has nothing to eliminate this level: it posts every
            // round's (empty) frame immediately and races through the
            // removed barrier into its receives — B's matching queue
            // buffers whatever arrives ahead of the round it is in.
            for round in 0..3u32 {
                tx_to_b
                    .send(Frame {
                        tag: round,
                        val: 100 + round as u64,
                    })
                    .unwrap();
            }
            let mut pending = Vec::new();
            let got_a: Vec<u64> = (0..3u32)
                .map(|round| recv_where(&rx_a, &mut pending, round).expect("frame from B"))
                .collect();
            (got_a, b.join().unwrap()) // ([200, 201, 202], [100, 101, 102])
        });
    // Two ranks x three rounds enumerates completely under the bound.
    assert!(
        report.exhausted && report.schedules >= 100,
        "explored {} (exhausted: {})",
        report.schedules,
        report.exhausted
    );
}

// ---------------------------------------------------------------------------
// Subsystem 8: rank death mid-phase. The fault-injected transport's
// crash path (FaultyTransport announce_death) posts a control frame to
// every peer before the rank stops; the matching queue records the death
// and fails any wait on the dead rank instead of blocking — but frames
// that arrived *before* the death stay deliverable. Every live rank must
// observe the death (typed, not by luck), and the degraded world must
// still complete a live-ranks-only regroup round.
// ---------------------------------------------------------------------------

/// Control tag of a death announcement (the model's TAG_DEATH).
const DEATH: u32 = u32::MAX;

#[derive(Debug)]
struct DFrame {
    src: usize,
    tag: u32,
    val: u64,
}

/// The matching queue under failure: pending frames first (pre-death
/// deliveries stay deliverable), then the dead set, then blocking recv.
/// A death announcement from any rank is recorded the moment it is seen,
/// even while waiting on a different peer.
fn recv_from(
    rx: &mpsc::Receiver<DFrame>,
    pending: &mut Vec<DFrame>,
    dead: &mut Vec<usize>,
    src: usize,
    tag: u32,
) -> Option<u64> {
    if let Some(pos) = pending.iter().position(|f| f.src == src && f.tag == tag) {
        return Some(pending.remove(pos).val);
    }
    if dead.contains(&src) {
        return None;
    }
    loop {
        match rx.recv() {
            Ok(f) if f.tag == DEATH => {
                dead.push(f.src);
                if f.src == src {
                    return None;
                }
            }
            Ok(f) if f.src == src && f.tag == tag => return Some(f.val),
            Ok(f) => pending.push(f),
            Err(_) => return None,
        }
    }
}

/// A surviving rank: full round-0 exchange, a round-1 exchange in which
/// the dying peer fails typed (best-effort send, `None` receive), then a
/// live-ranks-only regroup round — the degraded world still makes
/// progress.
fn live_rank(
    me: usize,
    rx: &mpsc::Receiver<DFrame>,
    peers: &[(usize, mpsc::Sender<DFrame>)],
    other_live: usize,
    dying: usize,
) -> (Vec<u64>, Option<u64>, Option<u64>, u64) {
    let mut pending = Vec::new();
    let mut dead = Vec::new();
    for (_, tx) in peers {
        tx.send(DFrame {
            src: me,
            tag: 0,
            val: me as u64 * 100,
        })
        .unwrap();
    }
    let mut r0 = Vec::new();
    for (p, _) in peers {
        r0.push(recv_from(rx, &mut pending, &mut dead, *p, 0).expect("round-0 frame"));
    }
    // Round 1: the peer dies mid-phase. Sends to it are best-effort
    // (the production transports drop frames to a gone link), and the
    // receive surfaces the death as None instead of blocking.
    for (_, tx) in peers {
        let _ = tx.send(DFrame {
            src: me,
            tag: 1,
            val: me as u64 * 100 + 1,
        });
    }
    let from_live = recv_from(rx, &mut pending, &mut dead, other_live, 1);
    let from_dead = recv_from(rx, &mut pending, &mut dead, dying, 1);
    // Round 2: regroup among the survivors only.
    let live_tx = &peers.iter().find(|(p, _)| *p == other_live).unwrap().1;
    live_tx
        .send(DFrame {
            src: me,
            tag: 2,
            val: me as u64 * 100 + 2,
        })
        .unwrap();
    let regroup = recv_from(rx, &mut pending, &mut dead, other_live, 2).expect("regroup frame");
    assert!(
        dead.contains(&dying),
        "rank {me} never observed the death of rank {dying}"
    );
    (r0, from_live, from_dead, regroup)
}

/// The dying rank: participates fully in round 0, then crashes mid-phase
/// — announcing its death to every peer first, exactly as the faulty
/// transport's crash hook does before panicking the rank thread. The
/// seeded-bug variant swallows the announcement to one peer.
fn dying_rank(
    me: usize,
    rx: &mpsc::Receiver<DFrame>,
    peers: &[(usize, mpsc::Sender<DFrame>)],
    skip_announce: Option<usize>,
) {
    let mut pending = Vec::new();
    let mut dead = Vec::new();
    for (_, tx) in peers {
        tx.send(DFrame {
            src: me,
            tag: 0,
            val: me as u64 * 100,
        })
        .unwrap();
    }
    for (p, _) in peers {
        recv_from(rx, &mut pending, &mut dead, *p, 0).expect("round-0 frame");
    }
    for (p, tx) in peers {
        if Some(*p) == skip_announce {
            continue; // BUG: this peer never learns of the death
        }
        let _ = tx.send(DFrame {
            src: me,
            tag: DEATH,
            val: 0,
        });
    }
}

/// Three ranks, rank 2 dies between rounds 0 and 1; `skip_announce`
/// seeds the swallowed-notification bug.
fn death_mid_phase_round(
    skip_announce: Option<usize>,
) -> (
    (Vec<u64>, Option<u64>, Option<u64>, u64),
    (Vec<u64>, Option<u64>, Option<u64>, u64),
) {
    let (tx0, rx0) = mpsc::channel::<DFrame>();
    let (tx1, rx1) = mpsc::channel::<DFrame>();
    let (tx2, rx2) = mpsc::channel::<DFrame>();
    let t1 = {
        let peers = vec![(0usize, tx0.clone()), (2usize, tx2.clone())];
        thread::spawn(move || live_rank(1, &rx1, &peers, 0, 2))
    };
    let t2 = {
        let peers = vec![(0usize, tx0), (1usize, tx1.clone())];
        thread::spawn(move || dying_rank(2, &rx2, &peers, skip_announce))
    };
    let peers = vec![(1usize, tx1), (2usize, tx2)];
    let r0 = live_rank(0, &rx0, &peers, 1, 2);
    let r1 = t1.join().unwrap();
    t2.join().unwrap();
    (r0, r1)
}

#[test]
fn rank_death_mid_phase_is_observed_by_all_live_ranks() {
    let report = Model::new()
        .preemption_bound(3)
        .max_schedules(50_000)
        .check(|| {
            let (r0, r1) = death_mid_phase_round(None);
            // Typed observation on every schedule: the dead peer's round-1
            // frame is a clean None, the live exchange and the regroup
            // complete, and round-0 frames delivered before the death were
            // never discarded.
            assert_eq!(r0, (vec![100, 200], Some(101), None, 102));
            assert_eq!(r1, (vec![0, 200], Some(1), None, 2));
            (r0, r1)
        });
    assert!(report.schedules >= 1000, "explored {}", report.schedules);
}

// ---------------------------------------------------------------------------
// Bug detection and deterministic replay.
// ---------------------------------------------------------------------------

#[test]
fn detects_swallowed_death_notification_as_deadlock() {
    // The seeded bug: the dying rank's announcement never reaches rank 0,
    // whose wait on the dead peer can then block forever (the inbox still
    // has live producers, so no EOF rescues it) — and rank 1, parked in
    // the regroup receive while holding a sender to rank 0, hangs with
    // it. This is why announce_death must reach *every* peer before the
    // rank stops.
    let msg = expect_failure(Model::new().preemption_bound(2), || {
        death_mid_phase_round(Some(0))
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn detects_eager_send_before_last_halo_box() {
    // The seeded bug: the completion counter misses one tracked box, so
    // the frame is posted while that box is still unretired — the
    // protocol's "never before the last halo box retires" clause.
    let msg = expect_failure(Model::new().preemption_bound(3), || eager_send_round(true));
    assert!(
        msg.contains("eager frame incomplete") || msg.contains("posted"),
        "unexpected failure: {msg}"
    );
}

#[test]
fn detects_missing_empty_frame_as_deadlock() {
    // Remove the barrier AND the every-rank-sends-every-round invariant
    // and the sweep deadlocks: A skips its "empty" frame, so B parks in
    // a receive that can never match while A parks in B's join shadow.
    // This is why run_phase posts a frame to every neighbor even when it
    // eliminated nothing.
    let msg = expect_failure(Model::new().preemption_bound(2), || {
        let (tx_to_a, rx_a) = mpsc::channel::<Frame>();
        let (tx_to_b, rx_b) = mpsc::channel::<Frame>();
        let b = thread::spawn(move || {
            let mut pending = Vec::new();
            tx_to_a.send(Frame { tag: 0, val: 200 }).unwrap();
            // Blocks forever: A never posts its round-0 frame.
            recv_where(&rx_b, &mut pending, 0)
        });
        // BUG: A has no boxes this round and posts no frame at all
        // (instead of an empty one), then waits on B's next-round frame.
        let mut pending = Vec::new();
        let _got = recv_where(&rx_a, &mut pending, 0);
        let stuck = recv_where(&rx_a, &mut pending, 1);
        let from_b = b.join().unwrap();
        drop(tx_to_b);
        (stuck, from_b)
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

/// A non-atomic read-modify-write: some interleaving loses an update.
fn racy_counter() -> usize {
    let c = Arc::new(AtomicUsize::new(0));
    let c2 = c.clone();
    let t = thread::spawn(move || {
        let v = c2.load(Ordering::SeqCst);
        c2.store(v + 1, Ordering::SeqCst);
    });
    let v = c.load(Ordering::SeqCst);
    c.store(v + 1, Ordering::SeqCst);
    t.join().unwrap();
    let total = c.load(Ordering::SeqCst);
    assert_eq!(total, 2, "lost update");
    total
}

#[test]
fn detects_lost_update_and_replays_it() {
    let msg = expect_failure(Model::new().preemption_bound(2), racy_counter);
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
    let schedule = replay_string(&msg);

    // The printed schedule must reproduce the same failure, first try.
    let replay_msg = expect_failure(Model::new().replay(&schedule), racy_counter);
    assert!(
        replay_msg.contains("lost update"),
        "replay found a different failure: {replay_msg}"
    );
    assert!(
        replay_msg.contains(&schedule),
        "replay reported schedule [{schedule}] differently: {replay_msg}"
    );
}

#[test]
fn detects_poll_loop_toctou() {
    // The naive liveness-flag retire path: a command sent before the
    // flag cleared can arrive between a failed try_recv and the flag
    // check and be silently dropped. A real find: this exact bug was in
    // the first version of the drained loop above.
    let msg = expect_failure(Model::new().preemption_bound(3), || {
        let (tx, rx) = mpsc::channel();
        let alive = Arc::new(AtomicBool::new(true));
        let alive2 = alive.clone();
        let worker = thread::spawn(move || serve_poll_loop_toctou(&rx, &alive2));
        tx.send(Cmd::Work(5)).unwrap();
        tx.send(Cmd::Work(7)).unwrap();
        alive.store(false, Ordering::Release);
        drop(tx);
        worker.join().unwrap()
    });
    assert!(
        msg.contains("schedule-dependent result"),
        "unexpected failure: {msg}"
    );
}

#[test]
fn detects_abba_deadlock() {
    let msg = expect_failure(Model::new().preemption_bound(2), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn detects_lost_wakeup_as_deadlock() {
    // The waiter has no predicate: if the notifier fires first, the
    // notification is lost and the waiter sleeps forever. In the model
    // (no timeouts) that is a detected deadlock on those schedules.
    let msg = expect_failure(Model::new().preemption_bound(2), || {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let pair2 = pair.clone();
        let t = thread::spawn(move || {
            pair2.1.notify_one();
        });
        {
            let g = pair.0.lock().unwrap();
            let _g = pair.1.wait(g).unwrap();
        }
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn detects_schedule_dependent_result() {
    // Two unsynchronized increments where the *observed intermediate*
    // is returned: different schedules see different values.
    let msg = expect_failure(Model::new().preemption_bound(2), || {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        let seen = c.load(Ordering::SeqCst); // 0 or 1 depending on schedule
        t.join().unwrap();
        seen
    });
    assert!(
        msg.contains("schedule-dependent result"),
        "unexpected failure: {msg}"
    );
}
