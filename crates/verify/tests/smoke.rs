//! Mode-independent sanity checks: these run in *both* normal builds
//! (where the shims are `std` re-exports and a check executes exactly
//! one schedule) and under `--cfg srsf_model`.

use srsf_verify::sync::atomic::{AtomicUsize, Ordering};
use srsf_verify::sync::{Arc, Mutex};
use srsf_verify::{thread, Model};

#[test]
fn check_runs_and_reports() {
    let report = Model::new().check(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        c.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        c.load(Ordering::SeqCst)
    });
    assert!(report.schedules >= 1);
}

#[test]
fn shims_behave_like_std_outside_models() {
    let m = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let m = m.clone();
            thread::spawn(move || m.lock().unwrap().push(i))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut v = Arc::try_unwrap(m).unwrap().into_inner().unwrap();
    v.sort_unstable();
    assert_eq!(v, vec![0, 1, 2, 3]);
}
