//! Conjugate gradients, plain and preconditioned.
//!
//! Used for the Laplace experiments (Table III): the first-kind system is
//! symmetric positive definite but with condition number growing like
//! `O(N)`, so unpreconditioned CG needs ~`5 sqrt(N)` iterations while the
//! RS-S preconditioner holds the count nearly constant.

use crate::op::LinOp;
use srsf_linalg::vecops::{axpy, dot, nrm2};
use srsf_linalg::Scalar;

/// Outcome of a CG solve.
#[derive(Clone, Debug)]
pub struct CgResult<T> {
    /// Approximate solution.
    pub x: Vec<T>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the residual tolerance was met.
    pub converged: bool,
    /// Final `||r|| / ||b||`.
    pub relres: f64,
}

/// Plain CG: `A` must be (numerically) symmetric positive definite.
pub fn cg<T: Scalar>(a: &dyn LinOp<T>, b: &[T], tol: f64, max_iters: usize) -> CgResult<T> {
    pcg_impl(a, None, b, tol, max_iters)
}

/// Preconditioned CG with preconditioner application `m(x) ~= A^{-1} x`.
pub fn pcg<T: Scalar>(
    a: &dyn LinOp<T>,
    m: &dyn LinOp<T>,
    b: &[T],
    tol: f64,
    max_iters: usize,
) -> CgResult<T> {
    pcg_impl(a, Some(m), b, tol, max_iters)
}

fn pcg_impl<T: Scalar>(
    a: &dyn LinOp<T>,
    m: Option<&dyn LinOp<T>>,
    b: &[T],
    tol: f64,
    max_iters: usize,
) -> CgResult<T> {
    let n = b.len();
    assert_eq!(a.dim(), n);
    let bnorm = nrm2(b).max(f64::MIN_POSITIVE);
    let mut x = vec![T::ZERO; n];
    let mut r = b.to_vec();
    let mut z = match m {
        Some(m) => m.apply(&r),
        None => r.clone(),
    };
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut relres = nrm2(&r) / bnorm;
    if relres <= tol {
        return CgResult {
            x,
            iterations: 0,
            converged: true,
            relres,
        };
    }
    for it in 1..=max_iters {
        let ap = a.apply(&p);
        let pap = dot(&p, &ap);
        if pap.abs() == 0.0 {
            return CgResult {
                x,
                iterations: it - 1,
                converged: false,
                relres,
            };
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        relres = nrm2(&r) / bnorm;
        if relres <= tol {
            return CgResult {
                x,
                iterations: it,
                converged: true,
                relres,
            };
        }
        z = match m {
            Some(m) => m.apply(&r),
            None => r.clone(),
        };
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(z.iter()) {
            *pi = *zi + beta * *pi;
        }
    }
    CgResult {
        x,
        iterations: max_iters,
        converged: false,
        relres,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{DenseOp, IdentityOp};
    use srsf_linalg::Mat;

    fn spd_matrix(n: usize) -> Mat<f64> {
        // A = B^T B + n I: SPD, moderately conditioned.
        let b = Mat::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let mut a = srsf_linalg::gemm::adjoint_matmul(&b, &b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn cg_solves_spd_system() {
        let n = 24;
        let a = spd_matrix(n);
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.matvec(&xtrue);
        let op = DenseOp::new(a);
        let res = cg(&op, &b, 1e-12, 500);
        assert!(res.converged, "relres {}", res.relres);
        for (g, w) in res.x.iter().zip(xtrue.iter()) {
            assert!((g - w).abs() < 1e-8);
        }
    }

    #[test]
    fn identity_preconditioner_matches_plain_cg() {
        let n = 16;
        let a = spd_matrix(n);
        let b: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let op = DenseOp::new(a);
        let plain = cg(&op, &b, 1e-10, 300);
        let id = IdentityOp::new(n);
        let pre = pcg(&op, &id, &b, 1e-10, 300);
        assert_eq!(plain.iterations, pre.iterations);
        for (p, q) in plain.x.iter().zip(pre.x.iter()) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn perfect_preconditioner_converges_in_one_iteration() {
        let n = 12;
        let a = spd_matrix(n);
        let lu = srsf_linalg::Lu::factor(a.clone()).unwrap();
        struct InvOp {
            lu: srsf_linalg::Lu<f64>,
        }
        impl LinOp<f64> for InvOp {
            fn dim(&self) -> usize {
                self.lu.dim()
            }
            fn apply(&self, x: &[f64]) -> Vec<f64> {
                let mut y = x.to_vec();
                self.lu.solve_vec(&mut y);
                y
            }
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let res = pcg(&DenseOp::new(a), &InvOp { lu }, &b, 1e-12, 10);
        assert!(res.converged);
        assert!(res.iterations <= 2, "got {}", res.iterations);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = spd_matrix(8);
        let res = cg(&DenseOp::new(a), &[0.0; 8], 1e-12, 10);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn iteration_cap_reported_as_unconverged() {
        let n = 32;
        let a = spd_matrix(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let res = cg(&DenseOp::new(a), &b, 1e-15, 2);
        assert!(!res.converged);
        assert_eq!(res.iterations, 2);
    }
}
