//! Restarted GMRES with optional right preconditioning.
//!
//! Used for the Helmholtz experiments (Table V): the paper reports
//! preconditioned GMRES counts (`nit`, tolerance 1e-12) against
//! unpreconditioned GMRES(20) (`ñit`), which grows into the thousands as
//! the frequency increases.
//!
//! Right preconditioning solves `A M^{-1} y = b`, `x = M^{-1} y`, so the
//! monitored residual is the *true* residual of the original system. The
//! small projected least-squares problems are solved with our Householder
//! QR at every inner step — O(restart^3) per cycle, negligible next to the
//! O(N) matvecs.

use crate::op::LinOp;
use srsf_linalg::qr::householder_qr;
use srsf_linalg::triangular::solve_upper_vec;
use srsf_linalg::vecops::{axpy, dot, nrm2, scal};
use srsf_linalg::{Mat, Scalar};

/// GMRES options.
#[derive(Clone, Copy, Debug)]
pub struct GmresOpts {
    /// Restart length (the paper's unpreconditioned runs use 20).
    pub restart: usize,
    /// Relative residual tolerance.
    pub tol: f64,
    /// Cap on total inner iterations.
    pub max_iters: usize,
}

impl Default for GmresOpts {
    fn default() -> Self {
        Self {
            restart: 30,
            tol: 1e-12,
            max_iters: 10_000,
        }
    }
}

/// Outcome of a GMRES solve.
#[derive(Clone, Debug)]
pub struct GmresResult<T> {
    /// Approximate solution of `A x = b`.
    pub x: Vec<T>,
    /// Total inner iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Final relative residual estimate.
    pub relres: f64,
}

/// Solve `A x = b` by restarted GMRES; `m` (if given) is applied as a right
/// preconditioner (`m.apply(v) ~= A^{-1} v`).
pub fn gmres<T: Scalar>(
    a: &dyn LinOp<T>,
    m: Option<&dyn LinOp<T>>,
    b: &[T],
    opts: &GmresOpts,
) -> GmresResult<T> {
    let n = b.len();
    assert_eq!(a.dim(), n);
    let bnorm = nrm2(b).max(f64::MIN_POSITIVE);
    let mut x = vec![T::ZERO; n];
    let mut total_iters = 0usize;
    #[allow(unused_assignments)]
    let mut relres = 1.0;

    'outer: loop {
        // r = b - A x
        let ax = a.apply(&x);
        let mut r: Vec<T> = b.iter().zip(ax.iter()).map(|(bi, ai)| *bi - *ai).collect();
        let beta = nrm2(&r);
        relres = beta / bnorm;
        if relres <= opts.tol {
            return GmresResult {
                x,
                iterations: total_iters,
                converged: true,
                relres,
            };
        }
        if total_iters >= opts.max_iters {
            break 'outer;
        }
        scal(T::from_f64(1.0 / beta), &mut r);
        // Arnoldi basis and Hessenberg columns.
        let mut basis: Vec<Vec<T>> = vec![r];
        let mut hcols: Vec<Vec<T>> = Vec::new();
        let mut inner = 0usize;
        while inner < opts.restart && total_iters < opts.max_iters {
            // INVARIANT: basis is seeded with the normalized residual before the
            // loop and only ever grows
            let vj = basis.last().expect("basis nonempty");
            // w = A M^{-1} v_j
            let mv = match m {
                Some(m) => m.apply(vj),
                None => vj.clone(),
            };
            let mut w = a.apply(&mv);
            // Modified Gram-Schmidt.
            let mut hcol = Vec::with_capacity(basis.len() + 1);
            for v in &basis {
                let hij = dot(v, &w);
                axpy(-hij, v, &mut w);
                hcol.push(hij);
            }
            let hnext = nrm2(&w);
            hcol.push(T::from_f64(hnext));
            hcols.push(hcol);
            inner += 1;
            total_iters += 1;
            let breakdown = hnext < 1e-300;
            if !breakdown {
                scal(T::from_f64(1.0 / hnext), &mut w);
                basis.push(w);
            }
            // Solve the projected least squares and check the residual.
            let (y, res) = solve_projected(&hcols, beta, inner);
            relres = res / bnorm;
            if relres <= opts.tol
                || breakdown
                || inner == opts.restart
                || total_iters >= opts.max_iters
            {
                // Assemble the correction x += M^{-1} (V y).
                let mut vy = vec![T::ZERO; n];
                for (yi, v) in y.iter().zip(basis.iter()) {
                    axpy(*yi, v, &mut vy);
                }
                let corr = match m {
                    Some(m) => m.apply(&vy),
                    None => vy,
                };
                for (xi, ci) in x.iter_mut().zip(corr.iter()) {
                    *xi += *ci;
                }
                if relres <= opts.tol {
                    // Recompute the true residual for the return value.
                    let ax = a.apply(&x);
                    let true_res: f64 = b
                        .iter()
                        .zip(ax.iter())
                        .map(|(bi, ai)| (*bi - *ai).abs_sq())
                        .sum::<f64>()
                        .sqrt();
                    return GmresResult {
                        x,
                        iterations: total_iters,
                        converged: true,
                        relres: true_res / bnorm,
                    };
                }
                if breakdown {
                    break 'outer;
                }
                continue 'outer; // restart
            }
        }
        break 'outer;
    }
    GmresResult {
        x,
        iterations: total_iters,
        converged: relres <= opts.tol,
        relres,
    }
}

/// Solve `min_y || beta e1 - H y ||` for the `(j+1) x j` Hessenberg built
/// from `hcols`; returns `(y, residual_norm)`.
fn solve_projected<T: Scalar>(hcols: &[Vec<T>], beta: f64, j: usize) -> (Vec<T>, f64) {
    let rows = j + 1;
    let mut h = Mat::zeros(rows, j);
    for (col, hcol) in hcols.iter().take(j).enumerate() {
        for (row, &v) in hcol.iter().enumerate() {
            if row < rows {
                h[(row, col)] = v;
            }
        }
    }
    // QR of H, then y = R^{-1} (Q^H beta e1)[..j].
    let (f, tau) = householder_qr(h);
    let q = srsf_linalg::qr::form_q(&f, &tau, rows);
    let mut rhs = vec![T::ZERO; rows];
    for (i, r) in rhs.iter_mut().enumerate() {
        // (Q^H e1 * beta)_i = conj(Q[0, i]) * beta
        *r = q[(0, i)].conj().scale(beta);
    }
    let mut r11 = Mat::zeros(j, j);
    for c in 0..j {
        for r in 0..=c {
            r11[(r, c)] = f[(r, c)];
        }
    }
    let mut y = rhs[..j].to_vec();
    solve_upper_vec(&r11, false, &mut y);
    let res = rhs[j].abs();
    (y, res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::DenseOp;
    use srsf_linalg::c64;

    fn nonsym_matrix(n: usize) -> Mat<f64> {
        Mat::from_fn(n, n, |i, j| {
            if i == j {
                4.0 + (i % 3) as f64
            } else {
                0.8 / (1.0 + (i as f64 - j as f64).abs())
                    * if (i + 2 * j) % 3 == 0 { -1.0 } else { 1.0 }
            }
        })
    }

    #[test]
    fn solves_nonsymmetric_real_system() {
        let n = 30;
        let a = nonsym_matrix(n);
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).cos()).collect();
        let b = a.matvec(&xtrue);
        let op = DenseOp::new(a);
        let res = gmres(
            &op,
            None,
            &b,
            &GmresOpts {
                restart: 15,
                tol: 1e-12,
                max_iters: 500,
            },
        );
        assert!(res.converged, "relres {}", res.relres);
        for (g, w) in res.x.iter().zip(xtrue.iter()) {
            assert!((g - w).abs() < 1e-8);
        }
    }

    #[test]
    fn solves_complex_system() {
        let n = 20;
        let a = Mat::from_fn(n, n, |i, j| {
            if i == j {
                c64::new(3.0, 1.0)
            } else {
                c64::new(
                    0.3 / (1.0 + (i + j) as f64),
                    -0.1 * ((i as f64) - (j as f64)),
                )
                .scale(1.0 / (1.0 + (i as f64 - j as f64).abs()))
            }
        });
        let xtrue: Vec<c64> = (0..n).map(|i| c64::new((i as f64).sin(), 0.5)).collect();
        let b = a.matvec(&xtrue);
        let op = DenseOp::new(a);
        let res = gmres(&op, None, &b, &GmresOpts::default());
        assert!(res.converged);
        for (g, w) in res.x.iter().zip(xtrue.iter()) {
            assert!((*g - *w).norm() < 1e-8);
        }
    }

    #[test]
    fn restart_still_converges() {
        let n = 40;
        let a = nonsym_matrix(n);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let op = DenseOp::new(a);
        // Tiny restart forces many cycles but must still converge.
        let res = gmres(
            &op,
            None,
            &b,
            &GmresOpts {
                restart: 4,
                tol: 1e-10,
                max_iters: 2000,
            },
        );
        assert!(res.converged, "relres {}", res.relres);
        assert!(res.iterations > 4, "must have restarted");
        let full = gmres(
            &op,
            None,
            &b,
            &GmresOpts {
                restart: 40,
                tol: 1e-10,
                max_iters: 2000,
            },
        );
        assert!(full.iterations <= res.iterations);
    }

    #[test]
    fn perfect_right_preconditioner_one_iteration() {
        let n = 15;
        let a = nonsym_matrix(n);
        let lu = srsf_linalg::Lu::factor(a.clone()).unwrap();
        struct InvOp {
            lu: srsf_linalg::Lu<f64>,
        }
        impl LinOp<f64> for InvOp {
            fn dim(&self) -> usize {
                self.lu.dim()
            }
            fn apply(&self, x: &[f64]) -> Vec<f64> {
                let mut y = x.to_vec();
                self.lu.solve_vec(&mut y);
                y
            }
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 * 0.1 - 0.7).collect();
        let inv = InvOp { lu };
        let res = gmres(&DenseOp::new(a), Some(&inv), &b, &GmresOpts::default());
        assert!(res.converged);
        assert!(res.iterations <= 2, "got {}", res.iterations);
    }

    #[test]
    fn iteration_cap_respected() {
        let n = 50;
        let a = nonsym_matrix(n);
        let b = vec![1.0; n];
        let res = gmres(
            &DenseOp::new(a),
            None,
            &b,
            &GmresOpts {
                restart: 20,
                tol: 1e-16,
                max_iters: 7,
            },
        );
        assert!(res.iterations <= 7);
        assert!(!res.converged);
    }

    #[test]
    fn zero_rhs_immediate() {
        let a = nonsym_matrix(6);
        let res = gmres(&DenseOp::new(a), None, &[0.0; 6], &GmresOpts::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }
}
