//! Preconditioning with any [`Factorized`] object.
//!
//! The paper's Tables III and V use the RS-S factorization as a
//! preconditioner. With the unified solver API, *any* driver's output —
//! sequential, box-colored, or distributed — arrives here as a
//! `&dyn Factorized<T>`, and the Krylov methods never learn which driver
//! built it.

use crate::cg::{pcg, CgResult};
use crate::gmres::{gmres, GmresOpts, GmresResult};
use crate::op::LinOp;
use srsf_core::solver::Factorized;
use srsf_linalg::Scalar;

/// Adapter presenting a [`Factorized`] object as a `LinOp` whose action is
/// the approximate inverse (i.e., a preconditioner application).
pub struct FactorizedOp<'a, T> {
    inner: &'a dyn Factorized<T>,
}

impl<'a, T: Scalar> FactorizedOp<'a, T> {
    /// Wrap a factorization for use as a preconditioner operator.
    pub fn new(inner: &'a dyn Factorized<T>) -> Self {
        Self { inner }
    }
}

impl<T: Scalar> LinOp<T> for FactorizedOp<'_, T> {
    fn dim(&self) -> usize {
        self.inner.n()
    }
    fn apply(&self, x: &[T]) -> Vec<T> {
        self.inner.solve(x)
    }
}

/// Preconditioned CG with any factorization as the preconditioner.
pub fn pcg_factorized<T: Scalar>(
    a: &dyn LinOp<T>,
    m: &dyn Factorized<T>,
    b: &[T],
    tol: f64,
    max_iters: usize,
) -> CgResult<T> {
    pcg(a, &FactorizedOp::new(m), b, tol, max_iters)
}

/// Right-preconditioned GMRES with any factorization as the
/// preconditioner.
pub fn gmres_factorized<T: Scalar>(
    a: &dyn LinOp<T>,
    m: &dyn Factorized<T>,
    b: &[T],
    opts: &GmresOpts,
) -> GmresResult<T> {
    let op = FactorizedOp::new(m);
    gmres(a, Some(&op), b, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srsf_core::stats::FactorStats;

    /// A mock "factorization" of the identity matrix.
    struct IdentityFact {
        n: usize,
        stats: FactorStats,
    }

    impl Factorized<f64> for IdentityFact {
        fn n(&self) -> usize {
            self.n
        }
        fn apply_inverse(&self, _b: &mut [f64]) {}
        fn stats(&self) -> &FactorStats {
            &self.stats
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn factorized_op_applies_inverse() {
        let f = IdentityFact {
            n: 3,
            stats: FactorStats::new(3, 0),
        };
        let op = FactorizedOp::new(&f as &dyn Factorized<f64>);
        assert_eq!(op.dim(), 3);
        assert_eq!(op.apply(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn pcg_with_identity_factorized_matches_cg() {
        // A = diag(1..5); exact preconditioner solves in one apply per CG
        // iteration either way; just exercise the plumbing.
        struct Diag;
        impl LinOp<f64> for Diag {
            fn dim(&self) -> usize {
                5
            }
            fn apply(&self, x: &[f64]) -> Vec<f64> {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| (i + 1) as f64 * v)
                    .collect()
            }
        }
        let f = IdentityFact {
            n: 5,
            stats: FactorStats::new(5, 0),
        };
        let b = vec![1.0; 5];
        let res = pcg_factorized(&Diag, &f, &b, 1e-12, 50);
        assert!(res.converged);
        for (i, x) in res.x.iter().enumerate() {
            assert!((x - 1.0 / (i + 1) as f64).abs() < 1e-10);
        }
    }
}
