//! Preconditioning with any [`Factorized`] object.
//!
//! The paper's Tables III and V use the RS-S factorization as a
//! preconditioner. With the unified solver API, *any* driver's output —
//! sequential, box-colored, or distributed — arrives here as a
//! `&dyn Factorized<T>`, and the Krylov methods never learn which driver
//! built it.

use crate::cg::{pcg, CgResult};
use crate::gmres::{gmres, GmresOpts, GmresResult};
use crate::op::LinOp;
use srsf_core::solver::Factorized;
use srsf_linalg::vecops::{dot, nrm2};
use srsf_linalg::{Mat, Scalar};

/// Adapter presenting a [`Factorized`] object as a `LinOp` whose action is
/// the approximate inverse (i.e., a preconditioner application).
pub struct FactorizedOp<'a, T> {
    inner: &'a dyn Factorized<T>,
}

impl<'a, T: Scalar> FactorizedOp<'a, T> {
    /// Wrap a factorization for use as a preconditioner operator.
    pub fn new(inner: &'a dyn Factorized<T>) -> Self {
        Self { inner }
    }
}

impl<T: Scalar> LinOp<T> for FactorizedOp<'_, T> {
    fn dim(&self) -> usize {
        self.inner.n()
    }
    fn apply(&self, x: &[T]) -> Vec<T> {
        self.inner.solve(x)
    }
}

/// Preconditioned CG with any factorization as the preconditioner.
pub fn pcg_factorized<T: Scalar>(
    a: &dyn LinOp<T>,
    m: &dyn Factorized<T>,
    b: &[T],
    tol: f64,
    max_iters: usize,
) -> CgResult<T> {
    pcg(a, &FactorizedOp::new(m), b, tol, max_iters)
}

/// Right-preconditioned GMRES with any factorization as the
/// preconditioner.
pub fn gmres_factorized<T: Scalar>(
    a: &dyn LinOp<T>,
    m: &dyn Factorized<T>,
    b: &[T],
    opts: &GmresOpts,
) -> GmresResult<T> {
    let op = FactorizedOp::new(m);
    gmres(a, Some(&op), b, opts)
}

/// Preconditioned CG over a block of right-hand sides, advanced in
/// lockstep so every iteration applies the preconditioner to all still
/// unconverged columns with *one* blocked
/// [`Factorized::apply_inverse_mat`] call — the level-3 solve path —
/// instead of one vector solve per column per iteration.
///
/// Each column runs an independent CG recurrence (its own `alpha`,
/// `beta`, residual); columns that reach the tolerance or break down are
/// frozen and drop out of the batch. Results are mathematically
/// identical to calling [`pcg_factorized`] per column (the recurrences
/// never mix), and each column's result is reported separately.
pub fn pcg_factorized_mat<T: Scalar>(
    a: &dyn LinOp<T>,
    m: &dyn Factorized<T>,
    b: &Mat<T>,
    tol: f64,
    max_iters: usize,
) -> Vec<CgResult<T>> {
    let n = b.nrows();
    let k = b.ncols();
    assert_eq!(a.dim(), n);
    assert_eq!(m.n(), n);
    let mut x = Mat::<T>::zeros(n, k);
    let mut r = b.clone();
    // p starts as z_0 = M^{-1} r_0; later iterations rebuild p from the
    // batch preconditioner output directly.
    let mut p = r.clone();
    m.apply_inverse_mat(&mut p);
    let mut rz: Vec<T> = (0..k).map(|j| dot(r.col(j), p.col(j))).collect();
    let bnorm: Vec<f64> = (0..k)
        .map(|j| nrm2(b.col(j)).max(f64::MIN_POSITIVE))
        .collect();
    let mut relres: Vec<f64> = (0..k).map(|j| nrm2(r.col(j)) / bnorm[j]).collect();
    let mut iters = vec![0usize; k];
    let mut converged: Vec<bool> = relres.iter().map(|&rr| rr <= tol).collect();
    // `active`: still iterating (not converged, not broken down).
    let mut active: Vec<bool> = converged.iter().map(|&c| !c).collect();

    for _ in 0..max_iters {
        if active.iter().all(|&a| !a) {
            break;
        }
        // Per-column CG step against the shared operator.
        for j in 0..k {
            if !active[j] {
                continue;
            }
            let ap = a.apply(p.col(j));
            let pap = dot(p.col(j), &ap);
            if pap.abs() == 0.0 {
                active[j] = false;
                continue;
            }
            let alpha = rz[j] / pap;
            iters[j] += 1;
            for (xi, pi) in x.col_mut(j).iter_mut().zip(p.col(j).iter()) {
                *xi += alpha * *pi;
            }
            // r update needs p's column immutable and r's mutable — index
            // split by taking the alpha-scaled ap.
            for (ri, ai) in r.col_mut(j).iter_mut().zip(ap.iter()) {
                *ri -= alpha * *ai;
            }
            relres[j] = nrm2(r.col(j)) / bnorm[j];
            if relres[j] <= tol {
                converged[j] = true;
                active[j] = false;
            }
        }
        let batch: Vec<usize> = (0..k).filter(|&j| active[j]).collect();
        if batch.is_empty() {
            break;
        }
        // One blocked preconditioner application for the whole batch.
        let mut zb = Mat::<T>::zeros(n, batch.len());
        for (c, &j) in batch.iter().enumerate() {
            zb.col_mut(c).copy_from_slice(r.col(j));
        }
        m.apply_inverse_mat(&mut zb);
        for (c, &j) in batch.iter().enumerate() {
            let rz_new = dot(r.col(j), zb.col(c));
            let beta = rz_new / rz[j];
            rz[j] = rz_new;
            let (pc, zc) = (p.col_mut(j), zb.col(c));
            for (pi, zi) in pc.iter_mut().zip(zc.iter()) {
                *pi = *zi + beta * *pi;
            }
        }
    }

    (0..k)
        .map(|j| CgResult {
            x: x.col(j).to_vec(),
            iterations: iters[j],
            converged: converged[j],
            relres: relres[j],
        })
        .collect()
}

/// Right-preconditioned GMRES over a block of right-hand sides.
///
/// Unlike CG, the Arnoldi process is inherently sequential per column —
/// each Krylov basis vector depends on the previous one for *that*
/// right-hand side — so the preconditioner cannot be batched across
/// columns mid-iteration; this is the convenience form that solves the
/// columns independently. For heavy multi-RHS traffic prefer the direct
/// [`Factorized::solve_mat`], which is the blocked path end-to-end.
pub fn gmres_factorized_mat<T: Scalar>(
    a: &dyn LinOp<T>,
    m: &dyn Factorized<T>,
    b: &Mat<T>,
    opts: &GmresOpts,
) -> Vec<GmresResult<T>> {
    (0..b.ncols())
        .map(|j| gmres_factorized(a, m, b.col(j), opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use srsf_core::stats::FactorStats;

    /// A mock "factorization" of the identity matrix.
    struct IdentityFact {
        n: usize,
        stats: FactorStats,
    }

    impl Factorized<f64> for IdentityFact {
        fn n(&self) -> usize {
            self.n
        }
        fn apply_inverse(&self, _b: &mut [f64]) {}
        fn stats(&self) -> &FactorStats {
            &self.stats
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn factorized_op_applies_inverse() {
        let f = IdentityFact {
            n: 3,
            stats: FactorStats::new(3, 0),
        };
        let op = FactorizedOp::new(&f as &dyn Factorized<f64>);
        assert_eq!(op.dim(), 3);
        assert_eq!(op.apply(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn pcg_factorized_mat_matches_per_column_pcg() {
        struct Diag;
        impl LinOp<f64> for Diag {
            fn dim(&self) -> usize {
                6
            }
            fn apply(&self, x: &[f64]) -> Vec<f64> {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| (i + 1) as f64 * v)
                    .collect()
            }
        }
        let f = IdentityFact {
            n: 6,
            stats: FactorStats::new(6, 0),
        };
        // Three RHS, including an all-zero column (converges at iteration 0).
        let b = srsf_linalg::Mat::from_fn(6, 3, |i, j| match j {
            0 => 1.0,
            1 => (i as f64 * 0.7).sin(),
            _ => 0.0,
        });
        let block = pcg_factorized_mat(&Diag, &f, &b, 1e-12, 100);
        assert_eq!(block.len(), 3);
        assert!(block[2].converged);
        assert_eq!(block[2].iterations, 0);
        for j in 0..3 {
            let single = pcg_factorized(&Diag, &f, b.col(j), 1e-12, 100);
            assert_eq!(block[j].converged, single.converged);
            assert_eq!(block[j].iterations, single.iterations);
            for (p, q) in block[j].x.iter().zip(single.x.iter()) {
                assert!((p - q).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn pcg_with_identity_factorized_matches_cg() {
        // A = diag(1..5); exact preconditioner solves in one apply per CG
        // iteration either way; just exercise the plumbing.
        struct Diag;
        impl LinOp<f64> for Diag {
            fn dim(&self) -> usize {
                5
            }
            fn apply(&self, x: &[f64]) -> Vec<f64> {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| (i + 1) as f64 * v)
                    .collect()
            }
        }
        let f = IdentityFact {
            n: 5,
            stats: FactorStats::new(5, 0),
        };
        let b = vec![1.0; 5];
        let res = pcg_factorized(&Diag, &f, &b, 1e-12, 50);
        assert!(res.converged);
        for (i, x) in res.x.iter().enumerate() {
            assert!((x - 1.0 / (i + 1) as f64).abs() < 1e-10);
        }
    }
}
