//! `srsf-iterative`: Krylov solvers for the accuracy experiments.
//!
//! The paper evaluates its factorization both as a direct solver and as a
//! preconditioner: Table III reports preconditioned CG iteration counts for
//! the (ill-conditioned, first-kind) Laplace system, Table V preconditioned
//! GMRES counts for Lippmann–Schwinger along with the unpreconditioned
//! GMRES(20) counts that motivate a direct method in the first place.
//!
//! * [`op`] — the [`op::LinOp`] operator abstraction plus residual helpers.
//! * [`cg`] — conjugate gradients and preconditioned CG.
//! * [`gmres`] — restarted GMRES with optional (right) preconditioning.

#![forbid(unsafe_code)]

pub mod cg;
pub mod gmres;
pub mod op;
pub mod precond;

pub use cg::{cg, pcg, CgResult};
pub use gmres::{gmres, GmresOpts, GmresResult};
pub use op::{relative_residual, DenseOp, LinOp};
pub use precond::{gmres_factorized, pcg_factorized, FactorizedOp};
