//! Operator abstraction — re-exported from `srsf-linalg` so every crate
//! shares one `LinOp` trait (dense, FFT-fast, and factorization operators
//! all implement it).

pub use srsf_linalg::op::{relative_residual, DenseOp, LinOp};

/// An identity "preconditioner", handy for writing unpreconditioned and
/// preconditioned solves through one code path.
pub struct IdentityOp {
    n: usize,
}

impl IdentityOp {
    /// Identity on `n`-vectors.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl<T: srsf_linalg::Scalar> LinOp<T> for IdentityOp {
    fn dim(&self) -> usize {
        self.n
    }
    fn apply(&self, x: &[T]) -> Vec<T> {
        x.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let id = IdentityOp::new(3);
        let x = vec![1.0, -2.0, 0.5];
        assert_eq!(LinOp::<f64>::apply(&id, &x), x);
        assert_eq!(LinOp::<f64>::dim(&id), 3);
    }
}
