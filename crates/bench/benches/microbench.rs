//! Microbenchmarks: the solver's computational primitives plus end-to-end
//! factor/solve at small sizes.
//!
//! Self-contained harness (`harness = false`): each case is run in a
//! calibrated loop and reported as median / mean wall time per iteration.
//!
//! Usage: `cargo bench -p srsf-bench -- [FILTER] [--quick] [--json PATH]`
//!
//! * `FILTER` — run only cases whose name contains the substring.
//! * `--quick` — shrink the per-case time budget (CI mode) and skip the
//!   largest end-to-end cases.
//! * `--json PATH` — additionally write the results as a `BENCH_*.json`
//!   file (schema documented in the README "Performance" section).

use srsf_core::{Compression, Driver, FactorOpts, Solver, Transport};
use srsf_fft::fft::Fft;
use srsf_geometry::grid::UnitGrid;
use srsf_geometry::procgrid::BoxColoring;
use srsf_kernels::assemble::assemble_block;
use srsf_kernels::fast_op::FastKernelOp;
use srsf_kernels::helmholtz::HelmholtzKernel;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::gemm::matmul;
use srsf_linalg::triangular::solve_upper_mat;
use srsf_linalg::{c64, cpqr, householder_qr, interp_decomp, rand_interp_decomp, LinOp, Lu, Mat};
use srsf_special::bessel::{j0, y0};
use std::time::{Duration, Instant};

/// One measured case, accumulated for the optional JSON report.
struct CaseRecord {
    name: String,
    iters: usize,
    median_s: f64,
    mean_s: f64,
}

/// Harness state: filter, per-case budget, and collected results.
struct Harness {
    filter: Option<String>,
    budget: Duration,
    quick: bool,
    results: Vec<CaseRecord>,
}

impl Harness {
    /// Run `f` repeatedly for roughly the budget, after a warmup pass, and
    /// print + record per-iteration statistics.
    fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.bench_n(name, None, f);
    }

    /// One measured invocation, no warmup. For the transport cases:
    /// every call is one `World::run` session, and a spawned worker must
    /// re-reach *its* session by replaying all earlier ones in-process —
    /// so the only honest (and deterministic) measurement is a single
    /// cold launch with no sessions before it.
    fn bench_cold<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.bench_n(name, Some(1), f);
    }

    fn bench_n<R>(&mut self, name: &str, cold: Option<usize>, mut f: impl FnMut() -> R) {
        if let Some(pat) = &self.filter {
            if !name.contains(pat.as_str()) {
                return;
            }
        }
        // Warmup + calibration (how many iterations fit in the budget?),
        // skipped for cold cases whose call count must be deterministic.
        let iters = match cold {
            Some(n) => n,
            None => {
                let t0 = Instant::now();
                std::hint::black_box(f());
                let once = t0.elapsed();
                (self.budget.as_secs_f64() / once.as_secs_f64().max(1e-9)).clamp(1.0, 10_000.0)
                    as usize
            }
        };
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(f());
            samples.push(t.elapsed().as_secs_f64());
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<32} {:>12} {:>14} {:>14}",
            iters,
            fmt_s(median),
            fmt_s(mean)
        );
        self.results.push(CaseRecord {
            name: name.to_string(),
            iters,
            median_s: median,
            mean_s: mean,
        });
    }

    /// Serialize the collected results to the `BENCH_*.json` schema.
    ///
    /// Relative paths are resolved against the *workspace* root (cargo
    /// runs benches with the package directory as cwd), so
    /// `--json BENCH_pr.json` overwrites the committed baseline in place.
    fn write_json(&self, path: &str) {
        let path = if std::path::Path::new(path).is_absolute() {
            std::path::PathBuf::from(path)
        } else {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(path)
        };
        let path = path.to_string_lossy().into_owned();
        let path = path.as_str();
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"srsf-microbench/1\",\n");
        out.push_str(&format!(
            "  \"mode\": \"{}\",\n",
            if self.quick { "quick" } else { "full" }
        ));
        out.push_str("  \"cases\": [\n");
        for (i, c) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters\": {}, \"median_s\": {:.6e}, \"mean_s\": {:.6e}}}{}\n",
                c.name,
                c.iters,
                c.median_s,
                c.mean_s,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, out).expect("write json report");
        println!("wrote {path}");
    }
}

fn fmt_s(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} us", s * 1e6)
    }
}

/// Deterministic pseudo-random matrix (xorshift entries in [-1, 1)).
fn random_mat(m: usize, n: usize, seed: u64) -> Mat<f64> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    Mat::from_fn(m, n, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 2_000_000) as f64 / 1_000_000.0 - 1.0
    })
}

/// Smooth kernel-type matrix with separated clusters — the shape CPQR sees
/// during skeletonization (fast-decaying singular values, modest rank).
fn kernel_mat(m: usize, n: usize, sep: f64) -> Mat<f64> {
    let src: Vec<f64> = (0..n).map(|j| j as f64 / n as f64).collect();
    let trg: Vec<f64> = (0..m).map(|i| sep + 1.3 * i as f64 / m as f64).collect();
    Mat::from_fn(m, n, |i, j| 1.0 / (trg[i] - src[j]))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let filter = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with('-')
                && args
                    .get(i.wrapping_sub(1))
                    .map(|p| p != "--json")
                    .unwrap_or(true)
        })
        .map(|(_, a)| a.clone())
        .next();

    let mut h = Harness {
        filter,
        budget: Duration::from_millis(if quick { 120 } else { 500 }),
        quick,
        results: Vec::new(),
    };
    println!(
        "{:<32} {:>12} {:>14} {:>14}",
        "benchmark", "iters", "median", "mean"
    );

    // Transport overhead: the same 4-rank distributed factorization with
    // ranks as threads vs ranks as real OS processes over TCP (spawn +
    // handshake + socket framing), each measured as ONE cold launch. The
    // TCP case must be the *first* session in the run: its 3 spawned
    // workers re-execute this binary up to their own session, so any
    // earlier TCP session would be replayed in-process by every worker
    // and inflate the sample.
    {
        let grid = UnitGrid::new(32);
        let kernel = LaplaceKernel::new(&grid);
        let pts = grid.points();
        let opts_for = |t: Transport| {
            FactorOpts::default()
                .with_tol(1e-6)
                .with_leaf_size(64)
                .with_transport(t)
        };
        for (name, transport) in [
            ("dist_transport/tcp_1024_p4", Transport::Tcp),
            ("dist_transport/inproc_1024_p4", Transport::InProc),
        ] {
            let opts = opts_for(transport);
            h.bench_cold(name, || {
                Solver::builder(&kernel, &pts)
                    .opts(opts.clone())
                    .driver(Driver::distributed(4))
                    .build()
                    .expect("distributed factorization")
            });
        }

        // Resident solve latency: factor once on a persistent in-process
        // rank world, then serve repeated blocked solves in place
        // (records stay on their ranks; each iteration is one full
        // scatter -> distributed sweep -> gather round trip). The
        // gathered case serves the same factorization from the rank-0
        // global object — the serial path residency replaces.
        let bm16 = {
            let mut m = Mat::zeros(grid.n(), 16);
            for j in 0..16 {
                m.col_mut(j)
                    .copy_from_slice(&random_vector::<f64>(grid.n(), 300 + j as u64));
            }
            m
        };
        let resident = Solver::builder(&kernel, &pts)
            .opts(opts_for(Transport::InProc))
            .driver(Driver::distributed(4))
            .resident(true)
            .build()
            .expect("resident factorization");
        h.bench("dist_solve/resident_1024_p4_nrhs16", || {
            resident.solve_mat(&bm16)
        });
        let gathered = Solver::builder(&kernel, &pts)
            .opts(opts_for(Transport::InProc))
            .driver(Driver::distributed(4))
            .build()
            .expect("gathered factorization");
        h.bench("dist_solve/gathered_1024_p4_nrhs16", || {
            gathered.solve_mat(&bm16)
        });
    }

    // Hybrid parallelism: the same 4-rank in-process factorization with 1
    // vs 4 worker threads per rank (`rank_threads`). The results are
    // bit-identical by construction (see dist_threads.rs); the ratio of
    // the two medians is the within-rank scaling the eager-send overlap
    // buys — `bench-diff` prints it as `rank_threads 4t/1t`. On a
    // single-core runner the 4t case instead measures pure scheduling
    // overhead (snapshot slots + claim cursor), mirroring the colored
    // driver's PR 3 baseline.
    {
        let grid = UnitGrid::new(64); // N = 4096
        let kernel = LaplaceKernel::new(&grid);
        let pts = grid.points();
        for threads in [1usize, 4] {
            h.bench(
                &format!("dist_factorize/laplace_4096_p4_{threads}t"),
                || {
                    Solver::builder(&kernel, &pts)
                        .tol(1e-6)
                        .leaf_size(64)
                        .driver(Driver::distributed(4))
                        .rank_threads(threads)
                        .build()
                        .expect("threaded distributed factorization")
                },
            );
        }

        // Tracing overhead: the same 4-rank factorization with span
        // recording off vs on. Disabled, every span site is one branch on
        // a relaxed atomic; enabled, it is a clock pair plus a fixed-slot
        // ring-buffer write (and the per-rank report rides the existing
        // result gather). A fixed iteration count keeps the two medians
        // comparable; `bench-diff` prints the on/off ratio and the CI
        // gate asserts it stays within 2%.
        let trace_iters = if quick { 3 } else { 7 };
        for (name, trace) in [
            ("trace_overhead/laplace_4096_off", false),
            ("trace_overhead/laplace_4096_on", true),
        ] {
            h.bench_n(name, Some(trace_iters), || {
                Solver::builder(&kernel, &pts)
                    .tol(1e-6)
                    .leaf_size(64)
                    .driver(Driver::distributed(4))
                    .trace(trace)
                    .build()
                    .expect("traced distributed factorization")
            });
        }
    }

    h.bench("bessel/hankel0_sweep", || {
        let mut acc = 0.0;
        let mut x = 0.05;
        while x < 60.0 {
            acc += j0(x) + y0(x);
            x += 0.37;
        }
        acc
    });

    for n in [256usize, 4096] {
        let plan = Fft::new(n);
        let x: Vec<c64> = (0..n).map(|i| c64::new(i as f64, -(i as f64))).collect();
        h.bench(&format!("fft/forward_{n}"), || {
            let mut y = x.clone();
            plan.forward(&mut y);
            y
        });
    }

    // --- Level-3 dense kernels at solver-representative shapes ------------

    // GEMM at Schur-update shapes: square and low-rank-update rectangles.
    for (m, k, n) in [
        (64, 64, 64),
        (128, 128, 128),
        (256, 256, 256),
        (512, 64, 512),
    ] {
        let a = random_mat(m, k, 11);
        let b = random_mat(k, n, 23);
        h.bench(&format!("gemm/f64_{m}x{k}x{n}"), || matmul(&a, &b));
    }
    {
        let a = Mat::from_fn(128, 128, |i, j| {
            c64::new((i % 13) as f64 - 6.0, (j % 7) as f64)
        });
        let b = Mat::from_fn(128, 128, |i, j| {
            c64::new((j % 11) as f64, (i % 5) as f64 - 2.0)
        });
        h.bench("gemm/c64_128x128x128", || matmul(&a, &b));
    }
    {
        // Retained level-2 reference kernels under identical codegen, so
        // the report separates the algorithmic gain of blocking from
        // compiler-flag effects.
        let a = random_mat(256, 256, 11);
        let b = random_mat(256, 256, 23);
        h.bench("gemm/naive_f64_256x256x256", || {
            let mut c = Mat::zeros(256, 256);
            srsf_linalg::gemm::matmul_acc_naive(&mut c, 1.0, &a, &b);
            c
        });
    }

    // CPQR at skeletonization shapes: tolerance-truncated on a smooth
    // kernel matrix (modest rank) and full-rank on a random matrix.
    {
        let a = kernel_mat(400, 1024, 1.05);
        h.bench("cpqr/f64_400x1024_tol", || {
            cpqr(a.clone(), 1e-9, usize::MAX)
        });
        h.bench("cpqr/naive_400x1024_tol", || {
            srsf_linalg::qr::cpqr_naive(a.clone(), 1e-9, usize::MAX)
        });
        // The randomized twin: sketch-then-ID on the same matrix at the
        // same tolerance. The point of the whole exercise — this must
        // beat the full CPQR above by a wide margin at proxy shapes.
        h.bench("rid/f64_400x1024_tol", || {
            rand_interp_decomp(&a, 1e-9, usize::MAX, 16, 10, 17)
        });
        let b = random_mat(400, 256, 7);
        h.bench("cpqr/f64_400x256_full", || cpqr(b.clone(), 0.0, usize::MAX));
    }

    // Unpivoted QR (the other half of the ID pipeline).
    {
        let a = random_mat(400, 256, 31);
        h.bench("qr/f64_400x256", || householder_qr(a.clone()));
    }

    // LU + triangular solve at dense-top-block shapes.
    {
        let a = random_mat(384, 384, 41);
        let a = {
            // Diagonal dominance so the pivoted LU never fails.
            let mut m = a;
            for i in 0..384 {
                m[(i, i)] += 400.0;
            }
            m
        };
        h.bench("lu/f64_384", || Lu::factor(a.clone()).unwrap());
        let mut u = Mat::zeros(256, 256);
        for j in 0..256 {
            for i in 0..=j {
                u[(i, j)] =
                    1.0 + ((i * 31 + j * 17) % 11) as f64 * 0.1 + if i == j { 8.0 } else { 0.0 };
            }
        }
        let rhs = random_mat(256, 256, 51);
        h.bench("trsm/f64_256x256", || {
            let mut b = rhs.clone();
            solve_upper_mat(&u, false, &mut b);
            b
        });
    }

    {
        // Proxy-shaped compression: tall smooth-kernel matrix.
        let src: Vec<f64> = (0..64).map(|i| i as f64 / 64.0).collect();
        let trg: Vec<f64> = (0..400).map(|i| 3.0 + i as f64 / 400.0).collect();
        let a = Mat::from_fn(400, 64, |i, j| 1.0 / (trg[i] - src[j]));
        h.bench("id/proxy_shaped_400x64", || {
            interp_decomp(a.clone(), 1e-6, usize::MAX)
        });
        h.bench("rid/proxy_shaped_400x64", || {
            rand_interp_decomp(&a, 1e-6, usize::MAX, 14, 10, 17)
        });
    }

    {
        let grid = UnitGrid::new(64);
        let laplace = LaplaceKernel::new(&grid);
        let helmholtz = HelmholtzKernel::new(&grid, 25.0);
        let pts = grid.points();
        let rows: Vec<usize> = (0..256).collect();
        let cols: Vec<usize> = (1000..1064).collect();
        h.bench("assembly/laplace_256x64", || {
            assemble_block(&laplace, &pts, &rows, &cols)
        });
        h.bench("assembly/helmholtz_256x64", || {
            assemble_block(&helmholtz, &pts, &rows, &cols)
        });
    }

    // End-to-end sequential-driver factorization.
    let sides: &[usize] = if quick { &[32, 64] } else { &[32, 64, 96] };
    for &side in sides {
        let grid = UnitGrid::new(side);
        let kernel = LaplaceKernel::new(&grid);
        let pts = grid.points();
        h.bench(&format!("factorize/laplace_{}", side * side), || {
            Solver::builder(&kernel, &pts)
                .tol(1e-6)
                .leaf_size(64)
                .driver(Driver::Sequential)
                .build()
                .unwrap()
        });
    }

    // The compression A/B at N = 4096: the default factorize case above
    // runs whatever `Compression::default()` is; these two pin each path
    // explicitly so bench-diff can report the sketched/cpqr ratio.
    {
        let grid = UnitGrid::new(64);
        let kernel = LaplaceKernel::new(&grid);
        let pts = grid.points();
        for (name, compression) in [
            ("factorize/laplace_4096_sketched", Compression::sketched()),
            ("factorize/laplace_4096_cpqr", Compression::Cpqr),
        ] {
            h.bench(name, || {
                Solver::builder(&kernel, &pts)
                    .tol(1e-6)
                    .leaf_size(64)
                    .compression(compression)
                    .driver(Driver::Sequential)
                    .build()
                    .unwrap()
            });
        }
    }

    {
        let grid = UnitGrid::new(64);
        let kernel = LaplaceKernel::new(&grid);
        let pts = grid.points();
        let f = Solver::builder(&kernel, &pts)
            .tol(1e-6)
            .leaf_size(64)
            .build()
            .unwrap();
        let b = random_vector::<f64>(grid.n(), 3);
        h.bench("solve/laplace_4096", || f.solve(&b));

        // --- Solve phase: blocked multi-RHS vs repeated single-RHS -------
        // `solve_mat/..._nrhsK` amortizes the per-record gather + factor
        // traffic over K columns with GEMM/blocked-TRSM; the per-RHS win
        // is (K * median(solve/laplace_4096)) / median(nrhsK).
        for nrhs in [1usize, 16, 64] {
            let mut bm = Mat::zeros(grid.n(), nrhs);
            for j in 0..nrhs {
                bm.col_mut(j)
                    .copy_from_slice(&random_vector::<f64>(grid.n(), 100 + j as u64));
            }
            h.bench(&format!("solve_mat/laplace_4096_nrhs{nrhs}"), || {
                f.solve_mat(&bm)
            });
        }
        // The same 64 right-hand sides as 64 sequential vector solves —
        // the baseline the acceptance ratio is measured against.
        let cols: Vec<Vec<f64>> = (0..64)
            .map(|j| random_vector::<f64>(grid.n(), 100 + j as u64))
            .collect();
        h.bench("solve_mat/laplace_4096_seq64", || {
            let mut last = Vec::new();
            for c in &cols {
                last = f.solve(c);
            }
            last
        });

        // --- Color-scheduled threaded apply ------------------------------
        // The colored (distance-3 Nine) factorization stamps whole color
        // rounds, which the threaded apply runs concurrently.
        let fc = Solver::builder(&kernel, &pts)
            .tol(1e-6)
            .leaf_size(64)
            .driver(Driver::Colored {
                scheme: BoxColoring::Nine,
                threads: 4,
            })
            .build()
            .unwrap();
        let bm16 = {
            let mut m = Mat::zeros(grid.n(), 16);
            for j in 0..16 {
                m.col_mut(j)
                    .copy_from_slice(&random_vector::<f64>(grid.n(), 200 + j as u64));
            }
            m
        };
        for threads in [1usize, 4] {
            h.bench(&format!("solve_mat/threaded_nrhs16_{threads}t"), || {
                let mut x = bm16.clone();
                fc.apply_inverse_mat_threaded(&mut x, threads);
                x
            });
        }
    }

    {
        let grid = UnitGrid::new(64);
        let kernel = LaplaceKernel::new(&grid);
        let fast = FastKernelOp::laplace(&kernel, &grid);
        let x = random_vector::<f64>(grid.n(), 4);
        h.bench("fast_matvec/laplace_4096", || fast.apply(&x));
    }

    if let Some(path) = json_path {
        h.write_json(&path);
    }
}
