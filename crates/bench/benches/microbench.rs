//! Microbenchmarks: the solver's computational primitives plus end-to-end
//! factor/solve at small sizes.
//!
//! Self-contained harness (`harness = false`): each case is run in a
//! calibrated loop and reported as median / mean wall time per iteration.
//! Filter cases by substring: `cargo bench -- fft`.

use srsf_core::{Driver, Solver};
use srsf_fft::fft::Fft;
use srsf_geometry::grid::UnitGrid;
use srsf_kernels::assemble::assemble_block;
use srsf_kernels::fast_op::FastKernelOp;
use srsf_kernels::helmholtz::HelmholtzKernel;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::{c64, interp_decomp, LinOp, Mat};
use srsf_special::bessel::{j0, y0};
use std::time::{Duration, Instant};

/// Run `f` repeatedly for roughly `budget`, after a warmup pass, and print
/// per-iteration statistics.
fn bench<R>(filter: &Option<String>, name: &str, mut f: impl FnMut() -> R) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    let budget = Duration::from_millis(500);
    // Warmup + calibration: how many iterations fit in the budget?
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed();
    let iters = (budget.as_secs_f64() / once.as_secs_f64().max(1e-9)).clamp(1.0, 10_000.0) as usize;
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<32} {:>12} {:>14} {:>14}",
        iters,
        fmt_s(median),
        fmt_s(mean)
    );
}

fn fmt_s(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} us", s * 1e6)
    }
}

fn main() {
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    println!(
        "{:<32} {:>12} {:>14} {:>14}",
        "benchmark", "iters", "median", "mean"
    );

    bench(&filter, "bessel/hankel0_sweep", || {
        let mut acc = 0.0;
        let mut x = 0.05;
        while x < 60.0 {
            acc += j0(x) + y0(x);
            x += 0.37;
        }
        acc
    });

    for n in [256usize, 4096] {
        let plan = Fft::new(n);
        let x: Vec<c64> = (0..n).map(|i| c64::new(i as f64, -(i as f64))).collect();
        bench(&filter, &format!("fft/forward_{n}"), || {
            let mut y = x.clone();
            plan.forward(&mut y);
            y
        });
    }

    {
        // Proxy-shaped compression: tall smooth-kernel matrix.
        let src: Vec<f64> = (0..64).map(|i| i as f64 / 64.0).collect();
        let trg: Vec<f64> = (0..400).map(|i| 3.0 + i as f64 / 400.0).collect();
        let a = Mat::from_fn(400, 64, |i, j| 1.0 / (trg[i] - src[j]));
        bench(&filter, "id/proxy_shaped_400x64", || {
            interp_decomp(a.clone(), 1e-6, usize::MAX)
        });
    }

    {
        let grid = UnitGrid::new(64);
        let laplace = LaplaceKernel::new(&grid);
        let helmholtz = HelmholtzKernel::new(&grid, 25.0);
        let pts = grid.points();
        let rows: Vec<usize> = (0..256).collect();
        let cols: Vec<usize> = (1000..1064).collect();
        bench(&filter, "assembly/laplace_256x64", || {
            assemble_block(&laplace, &pts, &rows, &cols)
        });
        bench(&filter, "assembly/helmholtz_256x64", || {
            assemble_block(&helmholtz, &pts, &rows, &cols)
        });
    }

    for side in [32usize, 64] {
        let grid = UnitGrid::new(side);
        let kernel = LaplaceKernel::new(&grid);
        let pts = grid.points();
        bench(
            &filter,
            &format!("factorize/laplace_{}", side * side),
            || {
                Solver::builder(&kernel, &pts)
                    .tol(1e-6)
                    .leaf_size(64)
                    .driver(Driver::Sequential)
                    .build()
                    .unwrap()
            },
        );
    }

    {
        let grid = UnitGrid::new(64);
        let kernel = LaplaceKernel::new(&grid);
        let pts = grid.points();
        let f = Solver::builder(&kernel, &pts)
            .tol(1e-6)
            .leaf_size(64)
            .build()
            .unwrap();
        let b = random_vector::<f64>(grid.n(), 3);
        bench(&filter, "solve/laplace_4096", || f.solve(&b));
    }

    {
        let grid = UnitGrid::new(64);
        let kernel = LaplaceKernel::new(&grid);
        let fast = FastKernelOp::laplace(&kernel, &grid);
        let x = random_vector::<f64>(grid.n(), 4);
        bench(&filter, "fast_matvec/laplace_4096", || fast.apply(&x));
    }
}
