//! Criterion microbenchmarks: the solver's computational primitives plus
//! end-to-end factor/solve at small sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srsf_core::{factorize, FactorOpts};
use srsf_fft::fft::Fft;
use srsf_geometry::grid::UnitGrid;
use srsf_kernels::assemble::assemble_block;
use srsf_kernels::fast_op::FastKernelOp;
use srsf_kernels::helmholtz::HelmholtzKernel;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::{c64, interp_decomp, LinOp, Mat};
use srsf_special::bessel::{j0, y0};

fn bench_bessel(c: &mut Criterion) {
    c.bench_function("bessel/hankel0_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            let mut x = 0.05;
            while x < 60.0 {
                acc += j0(x) + y0(x);
                x += 0.37;
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [256usize, 4096] {
        let plan = Fft::new(n);
        let x: Vec<c64> = (0..n).map(|i| c64::new(i as f64, -(i as f64))).collect();
        g.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut y = x.clone();
                plan.forward(&mut y);
                std::hint::black_box(y)
            })
        });
    }
    g.finish();
}

fn bench_id(c: &mut Criterion) {
    // Proxy-shaped compression: tall smooth-kernel matrix.
    let src: Vec<f64> = (0..64).map(|i| i as f64 / 64.0).collect();
    let trg: Vec<f64> = (0..400).map(|i| 3.0 + i as f64 / 400.0).collect();
    let a = Mat::from_fn(400, 64, |i, j| 1.0 / (trg[i] - src[j]));
    c.bench_function("id/proxy_shaped_400x64", |b| {
        b.iter(|| std::hint::black_box(interp_decomp(a.clone(), 1e-6, usize::MAX)))
    });
}

fn bench_assembly(c: &mut Criterion) {
    let grid = UnitGrid::new(64);
    let laplace = LaplaceKernel::new(&grid);
    let helmholtz = HelmholtzKernel::new(&grid, 25.0);
    let pts = grid.points();
    let rows: Vec<usize> = (0..256).collect();
    let cols: Vec<usize> = (1000..1064).collect();
    c.bench_function("assembly/laplace_256x64", |b| {
        b.iter(|| std::hint::black_box(assemble_block(&laplace, &pts, &rows, &cols)))
    });
    c.bench_function("assembly/helmholtz_256x64", |b| {
        b.iter(|| std::hint::black_box(assemble_block(&helmholtz, &pts, &rows, &cols)))
    });
}

fn bench_factorize(c: &mut Criterion) {
    let mut g = c.benchmark_group("factorize");
    g.sample_size(10);
    for side in [32usize, 64] {
        let grid = UnitGrid::new(side);
        let kernel = LaplaceKernel::new(&grid);
        let pts = grid.points();
        let opts = FactorOpts { tol: 1e-6, leaf_size: 64, ..FactorOpts::default() };
        g.bench_with_input(BenchmarkId::new("laplace", side * side), &side, |b, _| {
            b.iter(|| std::hint::black_box(factorize(&kernel, &pts, &opts).unwrap()))
        });
    }
    g.finish();
}

fn bench_solve(c: &mut Criterion) {
    let grid = UnitGrid::new(64);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let opts = FactorOpts { tol: 1e-6, leaf_size: 64, ..FactorOpts::default() };
    let f = factorize(&kernel, &pts, &opts).unwrap();
    let b = random_vector::<f64>(grid.n(), 3);
    c.bench_function("solve/laplace_4096", |bch| {
        bch.iter(|| std::hint::black_box(f.solve(&b)))
    });
}

fn bench_fast_matvec(c: &mut Criterion) {
    let grid = UnitGrid::new(64);
    let kernel = LaplaceKernel::new(&grid);
    let fast = FastKernelOp::laplace(&kernel, &grid);
    let x = random_vector::<f64>(grid.n(), 4);
    c.bench_function("fast_matvec/laplace_4096", |b| {
        b.iter(|| std::hint::black_box(fast.apply(&x)))
    });
}

criterion_group!(
    benches,
    bench_bessel,
    bench_fft,
    bench_id,
    bench_assembly,
    bench_factorize,
    bench_solve,
    bench_fast_matvec
);
criterion_main!(benches);
