//! Shared experiment harness for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3). Because the default in-process rank world runs `p` threads on
//! however many cores the host has, each parallel case reports **both** the
//! measured wall clock and the modeled critical path
//! `max_rank(compute) + alpha * msgs + beta * words` (DESIGN.md §5); the
//! *shape* comparisons the paper makes (who wins, scaling slopes,
//! crossovers) are made on the critical path, with wall time shown for
//! transparency.

#![forbid(unsafe_code)]

use srsf_core::{Driver, FactorOpts, Solver};
use srsf_geometry::grid::UnitGrid;
use srsf_geometry::procgrid::ProcessGrid;
use srsf_iterative::gmres::{gmres, GmresOpts};
use srsf_iterative::precond::{gmres_factorized, pcg_factorized};
use srsf_kernels::fast_op::FastKernelOp;
use srsf_kernels::helmholtz::HelmholtzKernel;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::{c64, LinOp, Scalar};
use srsf_runtime::{NetworkModel, WorldStats};
use std::time::Instant;

/// One (N, p) cell of a runtime table.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Grid side (`N = side^2`).
    pub side: usize,
    /// Simulated process count.
    pub p: usize,
    /// Measured factorization wall time (host-limited; see module docs).
    pub tfact_wall: f64,
    /// Slowest rank's computation time (the paper's `tcomp`).
    pub tcomp: f64,
    /// `tfact - tcomp`: communication + overhead (the paper's `tother`).
    pub tother: f64,
    /// Modeled critical path under the given network model.
    pub tfact_model: f64,
    /// Solve wall time for one right-hand side.
    pub tsolve: f64,
    /// Relative residual of the direct solve.
    pub relres: f64,
    /// Communication counters.
    pub stats: WorldStats,
}

/// Run one Laplace case: factor (sequential for `p = 1`, distributed
/// otherwise), solve one RHS, and measure the residual with the FFT
/// operator.
pub fn run_laplace_case(
    side: usize,
    p: usize,
    opts: &FactorOpts,
    model: &NetworkModel,
) -> CaseResult {
    let grid = UnitGrid::new(side);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(grid.n(), 1234);
    let fast = FastKernelOp::laplace(&kernel, &grid);
    let (f, x, stats, walls) = factor_and_solve(&kernel, &pts, p, opts, &b);
    finish_case(side, p, f, x, stats, walls, &fast, &b, model)
}

/// Run one Helmholtz case (fixed `kappa`).
pub fn run_helmholtz_case(
    side: usize,
    p: usize,
    kappa: f64,
    opts: &FactorOpts,
    model: &NetworkModel,
) -> CaseResult {
    let grid = UnitGrid::new(side);
    let kernel = HelmholtzKernel::new(&grid, kappa);
    let pts = grid.points();
    let b = random_vector::<c64>(grid.n(), 1234);
    let fast = FastKernelOp::helmholtz(&kernel, &grid);
    let (f, x, stats, walls) = factor_and_solve(&kernel, &pts, p, opts, &b);
    finish_case(side, p, f, x, stats, walls, &fast, &b, model)
}

type FactorOutcome<T> = (Solver<T>, Vec<T>, WorldStats, (f64, f64));

fn factor_and_solve<K: srsf_kernels::kernel::Kernel>(
    kernel: &K,
    pts: &[srsf_geometry::point::Point],
    p: usize,
    opts: &FactorOpts,
    b: &[K::Elem],
) -> FactorOutcome<K::Elem> {
    if p == 1 {
        let t0 = Instant::now();
        let f = Solver::builder(kernel, pts)
            .opts(opts.clone())
            .build()
            // INVARIANT: deliberate — the experiment harness aborts on setup failure
            .expect("factorization");
        let tfact = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let x = f.solve(b);
        let tsolve = t1.elapsed().as_secs_f64();
        let mut stats = WorldStats::default();
        stats.per_rank.push(srsf_runtime::stats::CommStats {
            msgs_sent: 0,
            words_sent: 0,
            compute_s: f.stats().eliminate_s + f.stats().top_s,
            wait_s: 0.0,
        });
        (f, x, stats, (tfact, tsolve))
    } else {
        let grid = ProcessGrid::new(p);
        let t0 = Instant::now();
        let (f, x) = Solver::builder(kernel, pts)
            .opts(opts.clone())
            .driver(Driver::Distributed { grid })
            .build_with_solution(b)
            // INVARIANT: deliberate — the experiment harness aborts on setup failure
            .expect("distributed factorization");
        let total = t0.elapsed().as_secs_f64();
        let tsolve = f.stats().solve_s;
        let tfact = (total - tsolve).max(0.0);
        // INVARIANT: a Distributed-driver solver always carries comm stats
        let stats = f.comm_stats().expect("distributed comm stats").clone();
        (f, x, stats, (tfact, tsolve))
    }
}

#[allow(clippy::too_many_arguments)]
fn finish_case<T: Scalar>(
    side: usize,
    p: usize,
    f: Solver<T>,
    x: Vec<T>,
    stats: WorldStats,
    (tfact_wall, tsolve): (f64, f64),
    fast: &dyn LinOp<T>,
    b: &[T],
    model: &NetworkModel,
) -> CaseResult {
    let relres = srsf_linalg::relative_residual(fast, &x, b);
    let tcomp = stats.max_compute_s().max(if p == 1 {
        f.stats().eliminate_s + f.stats().top_s
    } else {
        0.0
    });
    CaseResult {
        side,
        p,
        tfact_wall,
        tcomp,
        tother: (tfact_wall - tcomp).max(0.0),
        tfact_model: stats.critical_path_s(model),
        tsolve,
        relres,
        stats,
    }
}

/// Iteration counts: PCG for the (SPD) Laplace system preconditioned by the
/// factorization, as in Table III.
pub fn laplace_pcg_iters(side: usize, opts: &FactorOpts, tol: f64) -> (usize, f64) {
    let grid = UnitGrid::new(side);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let f = Solver::builder(&kernel, &pts)
        .opts(opts.clone())
        .build()
        // INVARIANT: deliberate — the experiment harness aborts on setup failure
        .expect("factorization");
    let fast = FastKernelOp::laplace(&kernel, &grid);
    let b = random_vector::<f64>(grid.n(), 77);
    let res = pcg_factorized(&fast, &f, &b, tol, 200);
    (res.iterations, res.relres)
}

/// Iteration counts: preconditioned GMRES for Helmholtz (`nit`) and
/// unpreconditioned GMRES(20) capped at `cap` iterations (`~nit`), as in
/// Table V. Returns `(nit, ~nit, unpreconditioned_converged)`.
pub fn helmholtz_gmres_iters(
    side: usize,
    kappa: f64,
    opts: &FactorOpts,
    tol: f64,
    cap: usize,
) -> (usize, usize, bool) {
    let grid = UnitGrid::new(side);
    let kernel = HelmholtzKernel::new(&grid, kappa);
    let pts = grid.points();
    let f = Solver::builder(&kernel, &pts)
        .opts(opts.clone())
        .build()
        // INVARIANT: deliberate — the experiment harness aborts on setup failure
        .expect("factorization");
    let fast = FastKernelOp::helmholtz(&kernel, &grid);
    let b = random_vector::<c64>(grid.n(), 77);
    let pre = gmres_factorized(
        &fast,
        &f,
        &b,
        &GmresOpts {
            restart: 30,
            tol,
            max_iters: 500,
        },
    );
    let un = gmres(
        &fast,
        None,
        &b,
        &GmresOpts {
            restart: 20,
            tol,
            max_iters: cap,
        },
    );
    (pre.iterations, un.iterations, un.converged)
}

/// Default experiment grid sides; `--large` extends the sweep.
pub fn sweep_sides(large: bool) -> Vec<usize> {
    if large {
        vec![32, 64, 128, 256]
    } else {
        vec![32, 64, 128]
    }
}

/// Simulated process counts that fit a sweep entry (rank grids need at
/// least 2x2 leaf boxes per rank).
pub fn sweep_procs(side: usize) -> Vec<usize> {
    let mut ps = vec![1, 4];
    if side >= 128 {
        ps.push(16);
    }
    ps
}

/// `--large` flag helper.
pub fn is_large() -> bool {
    std::env::args().any(|a| a == "--large")
}

/// Print a horizontal rule sized for the tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_are_consistent() {
        assert!(sweep_sides(false).len() < sweep_sides(true).len());
        assert_eq!(sweep_procs(32), vec![1, 4]);
        assert!(sweep_procs(128).contains(&16));
    }

    #[test]
    fn small_laplace_case_runs() {
        let opts = FactorOpts::default().with_tol(1e-6).with_leaf_size(16);
        let c = run_laplace_case(32, 1, &opts, &NetworkModel::intra_node());
        assert!(c.relres < 1e-4, "relres {}", c.relres);
        assert!(c.tfact_wall > 0.0);
        let c4 = run_laplace_case(32, 4, &opts, &NetworkModel::intra_node());
        assert!(c4.relres < 1e-4);
        assert!(c4.stats.total_msgs() > 0);
    }
}
