//! Figure 10 — factorization-time series of the shared-memory box-colored
//! reference vs the distributed process-colored solver, across core counts
//! (the plot form of Table VI).

use srsf_bench::rule;
use srsf_core::colored::ColorScheme;
use srsf_core::{Driver, FactorOpts, Solver};
use srsf_geometry::grid::UnitGrid;
use srsf_geometry::procgrid::ProcessGrid;
use srsf_kernels::helmholtz::HelmholtzKernel;
use std::time::Instant;

fn main() {
    let side = if srsf_bench::is_large() { 128 } else { 64 };
    let grid = UnitGrid::new(side);
    let kernel = HelmholtzKernel::new(&grid, 25.0);
    let pts = grid.points();
    println!("Figure 10 reproduction: tfact vs cores, shared (box-colored) vs distributed");
    println!("Helmholtz kappa = 25, N = {side}^2");
    for eps in [1e-3, 1e-6] {
        let opts = FactorOpts::default().with_tol(eps).with_leaf_size(64);
        println!("\n  eps = {eps:.0e}");
        println!("{:>5} {:>14} {:>14}", "p", "shared[s]", "distributed[s]");
        rule(36);
        for p in [1usize, 4] {
            let t0 = Instant::now();
            let _ = Solver::builder(&kernel, &pts)
                .opts(opts.clone())
                .driver(Driver::Colored {
                    scheme: ColorScheme::Four,
                    threads: p,
                })
                .build()
                .unwrap();
            let shared = t0.elapsed().as_secs_f64();
            let driver = if p == 1 {
                Driver::Sequential
            } else {
                Driver::Distributed {
                    grid: ProcessGrid::new(p),
                }
            };
            let t = Instant::now();
            let _ = Solver::builder(&kernel, &pts)
                .opts(opts.clone())
                .driver(driver)
                .build()
                .unwrap();
            let dist = t.elapsed().as_secs_f64();
            println!("{:>5} {:>14.3} {:>14.3}", p, shared, dist);
        }
    }
    println!("\n(paper: Fig. 10 — the two parallelization strategies track each other closely)");
}
