//! Figure 10 — factorization-time series of the shared-memory box-colored
//! reference vs the distributed process-colored solver, across core counts
//! (the plot form of Table VI).

use srsf_bench::rule;
use srsf_core::colored::{colored_factorize, ColorScheme};
use srsf_core::distributed::dist_factorize;
use srsf_core::FactorOpts;
use srsf_geometry::grid::UnitGrid;
use srsf_geometry::procgrid::ProcessGrid;
use srsf_kernels::helmholtz::HelmholtzKernel;
use std::time::Instant;

fn main() {
    let side = if srsf_bench::is_large() { 128 } else { 64 };
    let grid = UnitGrid::new(side);
    let kernel = HelmholtzKernel::new(&grid, 25.0);
    let pts = grid.points();
    println!("Figure 10 reproduction: tfact vs cores, shared (box-colored) vs distributed");
    println!("Helmholtz kappa = 25, N = {side}^2");
    for eps in [1e-3, 1e-6] {
        let opts = FactorOpts { tol: eps, leaf_size: 64, ..FactorOpts::default() };
        println!("\n  eps = {eps:.0e}");
        println!("{:>5} {:>14} {:>14}", "p", "shared[s]", "distributed[s]");
        rule(36);
        for p in [1usize, 4] {
            let t0 = Instant::now();
            let _ = colored_factorize(&kernel, &pts, &opts, ColorScheme::Four, p).unwrap();
            let shared = t0.elapsed().as_secs_f64();
            let dist = if p == 1 {
                let t = Instant::now();
                let _ = srsf_core::factorize(&kernel, &pts, &opts).unwrap();
                t.elapsed().as_secs_f64()
            } else {
                let t = Instant::now();
                let _ = dist_factorize(&kernel, &pts, &ProcessGrid::new(p), &opts).unwrap();
                t.elapsed().as_secs_f64()
            };
            println!("{:>5} {:>14.3} {:>14.3}", p, shared, dist);
        }
    }
    println!("\n(paper: Fig. 10 — the two parallelization strategies track each other closely)");
}
