//! Figure 11 — weak scaling of the factorization time with one process per
//! node (the plot form of Table VII): the same traffic costed under the
//! inter-node network model, at fixed N/p.

use srsf_bench::{rule, run_helmholtz_case};
use srsf_core::FactorOpts;
use srsf_runtime::NetworkModel;

fn main() {
    let opts = FactorOpts::default().with_tol(1e-6).with_leaf_size(64);
    println!("Figure 11 reproduction: weak scaling, 1 process per node (inter-node model)");
    println!("Helmholtz kappa = 25, eps = 1e-6");
    println!(
        "{:>8} {:>8} {:>5} {:>14} {:>14}",
        "N/p", "N", "p", "t_inter[s]", "t_intra[s]"
    );
    rule(54);
    let base: &[usize] = if srsf_bench::is_large() { &[64] } else { &[32] };
    for &per in base {
        for (p, mult) in [(4usize, 2usize), (16, 4)] {
            let side = per * mult;
            let c = run_helmholtz_case(side, p, 25.0, &opts, &NetworkModel::inter_node());
            let inter = c.stats.critical_path_s(&NetworkModel::inter_node());
            let intra = c.stats.critical_path_s(&NetworkModel::intra_node());
            println!(
                "{:>8} {:>8} {:>5} {:>14.4} {:>14.4}",
                per * per,
                side * side,
                p,
                inter,
                intra
            );
        }
    }
    rule(54);
    println!("(paper: Fig. 11 — weak-scaling curves stay nearly flat; network cost is minor)");
}
