//! Table IV — Helmholtz kernel at fixed frequency kappa = 25: runtimes vs
//! (N, p).

use srsf_bench::{is_large, rule, run_helmholtz_case, sweep_procs, sweep_sides};
use srsf_core::FactorOpts;
use srsf_runtime::NetworkModel;

fn main() {
    let opts = FactorOpts::default().with_tol(1e-6).with_leaf_size(64);
    let model = NetworkModel::intra_node();
    let kappa = 25.0;
    println!("Table IV reproduction: 2-D Helmholtz kernel, kappa = 25, eps = 1e-6");
    println!(
        "{:>8} {:>5} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "N", "p", "tfact[s]", "tcomp[s]", "tother[s]", "tmodel[s]", "tsolve[s]", "relres"
    );
    rule(84);
    for side in sweep_sides(is_large()) {
        for p in sweep_procs(side) {
            let c = run_helmholtz_case(side, p, kappa, &opts, &model);
            println!(
                "{:>8} {:>5} {:>10.3} {:>10.3} {:>10.3} {:>12.3} {:>10.4} {:>10.2e}",
                side * side,
                p,
                c.tfact_wall,
                c.tcomp,
                c.tother,
                c.tfact_model,
                c.tsolve,
                c.relres
            );
        }
        rule(84);
    }
    println!(
        "(paper: Table IV — Helmholtz tfact larger than Laplace at equal N; Hankel evals dominate)"
    );
}
