//! Table V — Helmholtz with increasing frequency kappa = pi*sqrt(N)/16
//! (32 points per wavelength): tfact, tsolve, preconditioned GMRES `nit`,
//! and unpreconditioned GMRES(20) `~nit`.

use srsf_bench::{helmholtz_gmres_iters, is_large, rule, run_helmholtz_case, sweep_sides};
use srsf_core::FactorOpts;
use srsf_runtime::NetworkModel;

fn main() {
    let opts = FactorOpts::default().with_tol(1e-6).with_leaf_size(64);
    let model = NetworkModel::intra_node();
    let cap = 4000;
    println!("Table V reproduction: Helmholtz, kappa = pi*sqrt(N)/16 (32 pts/wavelength)");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>6} {:>8}",
        "N", "kappa/2pi", "tfact[s]", "tsolve[s]", "nit", "~nit"
    );
    rule(60);
    for side in sweep_sides(is_large()) {
        let kappa = core::f64::consts::PI * side as f64 / 16.0;
        let c = run_helmholtz_case(side, 1, kappa, &opts, &model);
        let (nit, unit, conv) = helmholtz_gmres_iters(side, kappa, &opts, 1e-12, cap);
        println!(
            "{:>8} {:>10.2} {:>10.3} {:>10.4} {:>6} {:>7}{}",
            side * side,
            kappa / (2.0 * core::f64::consts::PI),
            c.tfact_wall,
            c.tsolve,
            nit,
            unit,
            if conv { " " } else { "+" }
        );
    }
    rule(60);
    println!("('+' = unpreconditioned GMRES(20) hit the {cap}-iteration cap, as in the");
    println!(" paper's '> 10 000' entry; preconditioned counts stay small but grow with kappa)");
}
