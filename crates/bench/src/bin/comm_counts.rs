//! §IV validation — measured communication volumes vs the paper's bounds:
//! per-process messages = O(log N + log p), words = O(sqrt(N/p) + log p).
//!
//! ```sh
//! cargo run --release -p srsf-bench --bin comm_counts               # ranks as threads
//! cargo run --release -p srsf-bench --bin comm_counts -- --transport tcp
//! ```
//!
//! With `--transport tcp` every rank of every case is a real OS process
//! and the counters measure genuine inter-process traffic. The counters
//! are identical across backends (asserted by the transport-equivalence
//! tests), so the default stays in-process; the flag exists to *measure*
//! that claim. Each spawned worker re-executes this binary up to the
//! case it belongs to, recomputing earlier cases in-process — so prefer
//! the small sweep (`SRSF_BENCH_LARGE` unset) when using `tcp`.

use srsf_bench::{is_large, rule, run_laplace_case, sweep_sides};
use srsf_core::{FactorOpts, Transport};
use srsf_runtime::NetworkModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let transport: Transport = args
        .iter()
        .position(|a| a == "--transport")
        .map(|i| {
            args.get(i + 1)
                .expect("--transport expects a value")
                .parse()
                .unwrap_or_else(|e| panic!("{e}"))
        })
        .unwrap_or_default();
    let opts = FactorOpts::default()
        .with_tol(1e-6)
        .with_leaf_size(64)
        .with_transport(transport);
    let model = NetworkModel::intra_node();
    println!(
        "Communication-bound validation (Eq. 13): Laplace, eps = 1e-6, transport = {transport}"
    );
    println!(
        "{:>8} {:>5} {:>10} {:>12} {:>12} {:>14}",
        "N", "p", "max msgs", "max words", "sqrt(N/p)", "words/sqrt(N/p)"
    );
    rule(68);
    let mut sides = sweep_sides(is_large());
    if !sides.contains(&256) && is_large() {
        sides.push(256);
    }
    for side in sides {
        for p in [4usize, 16] {
            if side * side / p < 1024 {
                continue;
            }
            let c = run_laplace_case(side, p, &opts, &model);
            let sqrt_np = ((side * side) as f64 / p as f64).sqrt();
            println!(
                "{:>8} {:>5} {:>10} {:>12} {:>12.1} {:>14.1}",
                side * side,
                p,
                c.stats.max_msgs(),
                c.stats.max_words(),
                sqrt_np,
                c.stats.max_words() as f64 / sqrt_np
            );
        }
    }
    rule(68);
    println!("expected: max msgs grows ~log N (constant per level), and");
    println!("words/sqrt(N/p) approaches a constant as N grows (boundary-dominated traffic)");
}
