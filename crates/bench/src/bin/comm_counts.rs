//! §IV validation — measured communication volumes vs the paper's bounds:
//! per-process messages = O(log N + log p), words = O(sqrt(N/p) + log p)
//! for the factorization, and words = O(sqrt(N/p)) per solve.
//!
//! ```sh
//! cargo run --release -p srsf-bench --bin comm_counts               # ranks as threads
//! cargo run --release -p srsf-bench --bin comm_counts -- --transport tcp
//! cargo run --release -p srsf-bench --bin comm_counts -- --solve-reps 8
//! ```
//!
//! With `--transport tcp` every rank of every case is a real OS process
//! and the counters measure genuine inter-process traffic. The counters
//! are identical across backends (asserted by the transport-equivalence
//! tests), so the default stays in-process; the flag exists to *measure*
//! that claim. Each spawned worker re-executes this binary up to the
//! case it belongs to, recomputing earlier cases in-process — so prefer
//! the small sweep (`SRSF_BENCH_LARGE` unset) when using `tcp`.
//!
//! With `--solve-reps k` each case additionally factors a **resident**
//! solver (records stay on their ranks), serves `k` repeated solves
//! against it, and reports the per-solve messages/words — measured
//! exactly, as the counter delta between two probe snapshots bracketing
//! the `k` solves, divided by `k` — separately from the factorization
//! traffic above. The solve-phase bound O(sqrt(N/p)) is thereby measured
//! rather than assumed. (The RHS scatter / solution gather slabs are the
//! serving API's envelope — the residency analogue of the old rank-0
//! record gather — and move as uncounted service frames; their volume is
//! the analytic `N/p * nrhs` words per rank, printed for reference.)

use srsf_bench::{is_large, rule, run_laplace_case, sweep_sides};
use srsf_core::{Driver, FactorOpts, Solver, Transport};
use srsf_geometry::grid::UnitGrid;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use srsf_runtime::NetworkModel;

/// Per-solve counters of a resident service: factor once, probe, serve
/// `reps` solves, probe again; the delta is exact solve traffic.
fn resident_solve_counters(side: usize, p: usize, opts: &FactorOpts, reps: usize) -> (u64, u64) {
    let grid = UnitGrid::new(side);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let f = Solver::builder(&kernel, &pts)
        .opts(opts.clone())
        .driver(Driver::distributed(p))
        .resident(true)
        .build()
        .expect("resident factorization");
    let b = random_vector::<f64>(grid.n(), 1234);
    let before = f.resident_comm_probe().expect("probe");
    for _ in 0..reps {
        let _ = f.solve(&b);
    }
    let after = f.resident_comm_probe().expect("probe");
    let max_msgs = (0..p)
        .map(|r| (after.per_rank[r].msgs_sent - before.per_rank[r].msgs_sent) / reps as u64)
        .max()
        .unwrap_or(0);
    let max_words = (0..p)
        .map(|r| (after.per_rank[r].words_sent - before.per_rank[r].words_sent) / reps as u64)
        .max()
        .unwrap_or(0);
    (max_msgs, max_words)
}

fn solve_reps_mode(reps: usize, opts: &FactorOpts) {
    println!(
        "Solve-phase communication (resident service, {reps} solves/case, \
         transport = {}):",
        opts.transport
    );
    println!(
        "{:>8} {:>5} {:>10} {:>12} {:>12} {:>15} {:>14}",
        "N", "p", "msgs/solve", "words/solve", "sqrt(N/p)", "words/sqrt(N/p)", "slab words"
    );
    rule(82);
    for side in sweep_sides(is_large()) {
        for p in [4usize, 16] {
            if side * side / p < 1024 {
                continue;
            }
            let (msgs, words) = resident_solve_counters(side, p, opts, reps);
            let n = side * side;
            let sqrt_np = (n as f64 / p as f64).sqrt();
            println!(
                "{:>8} {:>5} {:>10} {:>12} {:>12.1} {:>15.1} {:>14}",
                n,
                p,
                msgs,
                words,
                sqrt_np,
                words as f64 / sqrt_np,
                n / p
            );
        }
    }
    rule(82);
    println!("expected: words/solve tracks sqrt(N/p) (Alg. 2 solve-phase halo + top traffic);");
    println!("slab words = N/p per rank per solve are the serving envelope, not counted above");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let transport: Transport = args
        .iter()
        .position(|a| a == "--transport")
        .map(|i| {
            args.get(i + 1)
                .expect("--transport expects a value")
                .parse()
                .unwrap_or_else(|e| panic!("{e}"))
        })
        .unwrap_or_default();
    let solve_reps: Option<usize> = args.iter().position(|a| a == "--solve-reps").map(|i| {
        args.get(i + 1)
            .expect("--solve-reps expects a value")
            .parse()
            .expect("--solve-reps K")
    });
    let opts = FactorOpts::default()
        .with_tol(1e-6)
        .with_leaf_size(64)
        .with_transport(transport);
    let model = NetworkModel::intra_node();
    if let Some(reps) = solve_reps {
        return solve_reps_mode(reps.max(1), &opts);
    }
    println!(
        "Communication-bound validation (Eq. 13): Laplace, eps = 1e-6, transport = {transport}"
    );
    println!(
        "{:>8} {:>5} {:>10} {:>12} {:>12} {:>14}",
        "N", "p", "max msgs", "max words", "sqrt(N/p)", "words/sqrt(N/p)"
    );
    rule(68);
    let mut sides = sweep_sides(is_large());
    if !sides.contains(&256) && is_large() {
        sides.push(256);
    }
    for side in sides {
        for p in [4usize, 16] {
            if side * side / p < 1024 {
                continue;
            }
            let c = run_laplace_case(side, p, &opts, &model);
            let sqrt_np = ((side * side) as f64 / p as f64).sqrt();
            println!(
                "{:>8} {:>5} {:>10} {:>12} {:>12.1} {:>14.1}",
                side * side,
                p,
                c.stats.max_msgs(),
                c.stats.max_words(),
                sqrt_np,
                c.stats.max_words() as f64 / sqrt_np
            );
        }
    }
    rule(68);
    println!("expected: max msgs grows ~log N (constant per level), and");
    println!("words/sqrt(N/p) approaches a constant as N grows (boundary-dominated traffic)");
}
