//! Figure 7 — Gaussian-bump scattering potential and the total field for an
//! incoming plane wave, solved with the direct factorization.
//!
//! Writes `fig7_potential.pgm` and `fig7_field.pgm` (portable graymaps)
//! plus `fig7_field.csv` into `bench_out/`.

use srsf_core::{FactorOpts, Solver};
use srsf_geometry::grid::UnitGrid;
use srsf_kernels::field::{lippmann_schwinger_rhs, plane_wave, sigma_from_mu, total_field_on_grid};
use srsf_kernels::helmholtz::{gaussian_bump, HelmholtzKernel};
use std::io::Write;

fn write_pgm(path: &str, side: usize, values: &[f64]) {
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-30);
    let mut out = format!("P2\n{side} {side}\n255\n");
    for iy in (0..side).rev() {
        for ix in 0..side {
            let v = ((values[iy * side + ix] - lo) / span * 255.0) as u8;
            out.push_str(&format!("{v} "));
        }
        out.push('\n');
    }
    std::fs::write(path, out).expect("write pgm");
}

fn main() {
    let side = if srsf_bench::is_large() { 128 } else { 64 };
    let kappa = 25.0;
    let grid = UnitGrid::new(side);
    let kernel = HelmholtzKernel::new(&grid, kappa);
    let pts = grid.points();
    println!("Figure 7 reproduction: kappa = {kappa}, {side}x{side} grid");

    let opts = FactorOpts::default().with_tol(1e-6);
    let f = Solver::builder(&kernel, &pts)
        .opts(opts)
        .build()
        .expect("factorization");
    let uin = plane_wave(&pts, kappa, (1.0, 0.0)); // traveling left to right
    let rhs = lippmann_schwinger_rhs(&kernel, &pts, &uin);
    let mu = f.solve(&rhs);
    let sigma = sigma_from_mu(&kernel, &mu);
    let u = total_field_on_grid(&grid, kappa, &sigma, &uin);

    std::fs::create_dir_all("bench_out").expect("mkdir");
    let potential: Vec<f64> = pts.iter().map(|p| gaussian_bump(*p)).collect();
    write_pgm("bench_out/fig7_potential.pgm", side, &potential);
    let real_field: Vec<f64> = u.iter().map(|z| z.re).collect();
    write_pgm("bench_out/fig7_field.pgm", side, &real_field);

    let mut csv = std::fs::File::create("bench_out/fig7_field.csv").expect("csv");
    writeln!(csv, "x,y,b,re_u,im_u").unwrap();
    for (i, p) in pts.iter().enumerate() {
        writeln!(
            csv,
            "{},{},{},{},{}",
            p.x, p.y, potential[i], u[i].re, u[i].im
        )
        .unwrap();
    }

    let max_amp = u.iter().map(|z| z.norm()).fold(0.0, f64::max);
    println!("total field: max |u| = {max_amp:.3} (incident amplitude 1; >1 indicates focusing)");
    println!("wrote bench_out/fig7_potential.pgm, fig7_field.pgm, fig7_field.csv");
}
