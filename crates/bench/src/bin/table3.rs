//! Table III — Laplace accuracies: relres and PCG iteration counts vs the
//! compression tolerance eps.

use srsf_bench::{is_large, laplace_pcg_iters, rule, run_laplace_case, sweep_sides};
use srsf_core::FactorOpts;
use srsf_runtime::NetworkModel;

fn main() {
    let model = NetworkModel::intra_node();
    println!("Table III reproduction: Laplace accuracy vs eps (PCG to 1e-12)");
    println!(
        "{:>9} {:>8} {:>10} {:>10} {:>10} {:>5}",
        "eps", "N", "tfact[s]", "tsolve[s]", "relres", "nit"
    );
    rule(60);
    for eps in [1e-6, 1e-9, 1e-12] {
        let opts = FactorOpts::default().with_tol(eps).with_leaf_size(64);
        for side in sweep_sides(is_large()) {
            let c = run_laplace_case(side, 1, &opts, &model);
            let (nit, _) = laplace_pcg_iters(side, &opts, 1e-12);
            println!(
                "{:>9.0e} {:>8} {:>10.3} {:>10.4} {:>10.2e} {:>5}",
                eps,
                side * side,
                c.tfact_wall,
                c.tsolve,
                c.relres,
                nit
            );
        }
        rule(60);
    }
    println!("(paper: Table III — near-constant nit per eps across N)");
}
