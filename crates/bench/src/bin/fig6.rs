//! Figure 6 — strong and weak scaling of the Laplace factorization time.
//!
//! Prints the two data series (time vs p at fixed N; time vs p at fixed
//! N/p) using the modeled critical path, which is what a multi-node run
//! would observe (DESIGN.md §5). Wall time is shown alongside.

use srsf_bench::{is_large, rule, run_laplace_case};
use srsf_core::FactorOpts;
use srsf_runtime::NetworkModel;

fn main() {
    let opts = FactorOpts::default().with_tol(1e-6).with_leaf_size(64);
    let model = NetworkModel::intra_node();
    let large = is_large();

    println!("Figure 6a reproduction: strong scaling (N fixed, p grows)");
    println!(
        "{:>8} {:>5} {:>12} {:>10}",
        "N", "p", "tmodel[s]", "twall[s]"
    );
    rule(40);
    let sides: &[usize] = if large { &[128, 256] } else { &[64, 128] };
    for &side in sides {
        for p in [1usize, 4, 16] {
            if side / ((p as f64).sqrt() as usize).max(1) < 16 {
                continue;
            }
            let c = run_laplace_case(side, p, &opts, &model);
            println!(
                "{:>8} {:>5} {:>12.3} {:>10.3}",
                side * side,
                p,
                c.tfact_model,
                c.tfact_wall
            );
        }
        rule(40);
    }

    println!();
    println!("Figure 6b reproduction: weak scaling (N/p fixed)");
    println!(
        "{:>8} {:>8} {:>5} {:>12} {:>10}",
        "N/p", "N", "p", "tmodel[s]", "twall[s]"
    );
    rule(48);
    let base: &[usize] = if large { &[64, 128] } else { &[32, 64] };
    for &per in base {
        for (p, mult) in [(1usize, 1usize), (4, 2), (16, 4)] {
            let side = per * mult;
            let c = run_laplace_case(side, p, &opts, &model);
            println!(
                "{:>8} {:>8} {:>5} {:>12.3} {:>10.3}",
                per * per,
                side * side,
                p,
                c.tfact_model,
                c.tfact_wall
            );
        }
        rule(48);
    }
    println!("(paper: Fig. 6 — strong scaling flattens as boundary work dominates; weak scaling grows slowly)");
}
