//! Ablations over the design choices DESIGN.md calls out: proxy radius,
//! proxy point count, leaf size, and the box-coloring scheme.

use srsf_bench::rule;
use srsf_core::colored::ColorScheme;
use srsf_core::{Driver, FactorOpts, Solver};
use srsf_geometry::grid::UnitGrid;
use srsf_kernels::fast_op::FastKernelOp;
use srsf_kernels::laplace::LaplaceKernel;
use srsf_kernels::util::random_vector;
use std::time::Instant;

fn run(opts: &FactorOpts, side: usize) -> (f64, f64, f64) {
    let grid = UnitGrid::new(side);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let fast = FastKernelOp::laplace(&kernel, &grid);
    let b = random_vector::<f64>(grid.n(), 5);
    let t = Instant::now();
    let f = Solver::builder(&kernel, &pts)
        .opts(opts.clone())
        .build()
        .unwrap();
    let tfact = t.elapsed().as_secs_f64();
    let rel = srsf_linalg::relative_residual(&fast, &f.solve(&b), &b);
    let leaf_rank = f.stats().avg_rank(f.stats().leaf_level).unwrap_or(0.0);
    (tfact, rel, leaf_rank)
}

fn main() {
    let side = if srsf_bench::is_large() { 128 } else { 64 };
    println!("Ablations (Laplace, N = {side}^2, eps = 1e-6)\n");

    println!("A. proxy radius factor (paper: 2.5 L; must stay inside M(B))");
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "factor", "tfact[s]", "relres", "leaf rank"
    );
    rule(44);
    for factor in [1.75, 2.0, 2.25, 2.5] {
        let opts = FactorOpts::default()
            .with_tol(1e-6)
            .with_proxy_radius_factor(factor);
        let (t, r, k) = run(&opts, side);
        println!("{:>8.2} {:>10.3} {:>10.2e} {:>10.1}", factor, t, r, k);
    }

    println!("\nB. proxy point count");
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "n_proxy", "tfact[s]", "relres", "leaf rank"
    );
    rule(44);
    for n in [16usize, 32, 64, 128] {
        let opts = FactorOpts::default().with_tol(1e-6).with_n_proxy_min(n);
        let (t, r, k) = run(&opts, side);
        println!("{:>8} {:>10.3} {:>10.2e} {:>10.1}", n, t, r, k);
    }

    println!("\nC. leaf size (points per leaf box)");
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "leaf", "tfact[s]", "relres", "leaf rank"
    );
    rule(44);
    for leaf in [16usize, 32, 64, 128] {
        let opts = FactorOpts::default().with_tol(1e-6).with_leaf_size(leaf);
        let (t, r, k) = run(&opts, side);
        println!("{:>8} {:>10.3} {:>10.2e} {:>10.1}", leaf, t, r, k);
    }

    println!("\nD. box-coloring scheme (shared-memory driver, 2 threads)");
    println!("{:>8} {:>10} {:>10}", "colors", "tfact[s]", "relres");
    rule(32);
    let grid = UnitGrid::new(side);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let fast = FastKernelOp::laplace(&kernel, &grid);
    let b = random_vector::<f64>(grid.n(), 5);
    for (name, scheme) in [("4", ColorScheme::Four), ("9", ColorScheme::Nine)] {
        let opts = FactorOpts::default().with_tol(1e-6);
        let t = Instant::now();
        let f = Solver::builder(&kernel, &pts)
            .opts(opts)
            .driver(Driver::Colored { scheme, threads: 2 })
            .build()
            .unwrap();
        let tf = t.elapsed().as_secs_f64();
        let r = srsf_linalg::relative_residual(&fast, &f.solve(&b), &b);
        println!("{:>8} {:>10.3} {:>10.2e}", name, tf, r);
    }
}
