//! Print seed-vs-PR microbench ratios so regressions are visible in the
//! CI job log.
//!
//! ```sh
//! cargo run --release -p srsf-bench --bin bench-diff -- BENCH_seed.json BENCH_pr.json
//! ```
//!
//! Reads two `srsf-microbench/1` reports (see the README "Performance"
//! section for the schema) and prints, per case, the baseline and current
//! median times and the speedup `baseline / current` (>1 is faster).
//! Cases present in only one file are listed as `new` / `dropped` rather
//! than silently skipped. The parser is deliberately tiny — the schema
//! writes one case per line — so the bin adds no dependencies.

use std::process::ExitCode;

/// `(name, median_s)` pairs scraped from a `BENCH_*.json` report.
fn parse_cases(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else {
            continue;
        };
        let Some(median) = field_f64(line, "\"median_s\": ") else {
            return Err(format!("{path}: case {name:?} has no median_s"));
        };
        out.push((name, median));
    }
    if out.is_empty() {
        return Err(format!("{path}: no cases found — not a microbench report?"));
    }
    Ok(out)
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn field_f64(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let end = line[start..]
        .find([',', '}'])
        .map(|i| i + start)
        .unwrap_or(line.len());
    line[start..end].trim().parse().ok()
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let gate_trace = args.iter().any(|a| a == "--gate-trace-overhead");
    let gate_factorize = args.iter().any(|a| a == "--gate-factorize");
    args.retain(|a| a != "--gate-trace-overhead" && a != "--gate-factorize");
    let (base_path, cur_path) = match args.as_slice() {
        [] => ("BENCH_seed.json".to_string(), "BENCH_pr.json".to_string()),
        [b, c] => (b.clone(), c.clone()),
        _ => {
            eprintln!(
                "usage: bench-diff [--gate-trace-overhead] [--gate-factorize] \
                 [BASELINE.json CURRENT.json]"
            );
            return ExitCode::FAILURE;
        }
    };
    let (base, cur) = match (parse_cases(&base_path), parse_cases(&cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench-diff: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:<36} {:>14} {:>14} {:>9}",
        "case", "baseline", "current", "speedup"
    );
    for (name, cur_median) in &cur {
        match base.iter().find(|(n, _)| n == name) {
            Some((_, base_median)) => {
                let speedup = base_median / cur_median;
                println!(
                    "{name:<36} {:>14} {:>14} {:>8.2}x",
                    fmt_s(*base_median),
                    fmt_s(*cur_median),
                    speedup
                );
            }
            None => {
                println!(
                    "{name:<36} {:>14} {:>14} {:>9}",
                    "-",
                    fmt_s(*cur_median),
                    "new"
                );
            }
        }
    }
    for (name, base_median) in &base {
        if !cur.iter().any(|(n, _)| n == name) {
            println!(
                "{name:<36} {:>14} {:>14} {:>9}",
                fmt_s(*base_median),
                "-",
                "dropped"
            );
        }
    }

    // Within-rank scaling of the hybrid distributed driver: 1-thread vs
    // 4-thread medians of the same bit-identical factorization. >1 means
    // the worker pool + eager-send overlap win wall-clock; on a
    // single-core runner the ratio instead reports pure scheduling
    // overhead, which is worth seeing in the log too.
    let median_of = |name: &str| cur.iter().find(|(n, _)| n == name).map(|(_, m)| *m);
    if let (Some(t1), Some(t4)) = (
        median_of("dist_factorize/laplace_4096_p4_1t"),
        median_of("dist_factorize/laplace_4096_p4_4t"),
    ) {
        println!(
            "\nrank_threads 4t/1t: {:.2}x ({} -> {})",
            t1 / t4,
            fmt_s(t1),
            fmt_s(t4)
        );
    }

    // Compression: sketched vs full-CPQR medians of the same sequential
    // factorization, both from the *current* report. <1 would mean the
    // randomized sketch-then-ID default lost to the deterministic path it
    // replaced. `--gate-factorize` additionally hard-fails the job if the
    // default `factorize/laplace_4096` case regressed vs the baseline
    // report — the headline O(N) number this crate exists to protect.
    if let (Some(sk), Some(cp)) = (
        median_of("factorize/laplace_4096_sketched"),
        median_of("factorize/laplace_4096_cpqr"),
    ) {
        println!(
            "factorize sketched vs cpqr: {:.2}x ({} -> {})",
            cp / sk,
            fmt_s(cp),
            fmt_s(sk)
        );
    }
    if gate_factorize {
        let base_fact = base
            .iter()
            .find(|(n, _)| n == "factorize/laplace_4096")
            .map(|(_, m)| *m);
        match (base_fact, median_of("factorize/laplace_4096")) {
            (Some(b), Some(c)) if c > b * 1.05 => {
                eprintln!(
                    "bench-diff: factorize/laplace_4096 regressed {:.2}x vs baseline \
                     ({} -> {})",
                    c / b,
                    fmt_s(b),
                    fmt_s(c)
                );
                return ExitCode::FAILURE;
            }
            (Some(_), Some(_)) => {}
            _ => {
                eprintln!(
                    "bench-diff: --gate-factorize set but factorize/laplace_4096 is \
                     missing from {base_path} or {cur_path}"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    // Tracing overhead: traced vs untraced medians of the same 4-rank
    // factorization, both from the *current* report. The span API
    // promises a branch-on-one-atomic no-op when disabled, so the ratio
    // should sit at 1.0 within noise; `--gate-trace-overhead` (the CI
    // bench job) turns the 2% budget into a hard failure.
    if let (Some(off), Some(on)) = (
        median_of("trace_overhead/laplace_4096_off"),
        median_of("trace_overhead/laplace_4096_on"),
    ) {
        let ratio = on / off;
        println!(
            "trace overhead on/off: {ratio:.3}x ({} -> {})",
            fmt_s(off),
            fmt_s(on)
        );
        if gate_trace && ratio > 1.02 {
            eprintln!(
                "bench-diff: traced factorization exceeds the 2% overhead budget \
                 ({ratio:.3}x > 1.02x)"
            );
            return ExitCode::FAILURE;
        }
    } else if gate_trace {
        eprintln!(
            "bench-diff: --gate-trace-overhead set but the trace_overhead cases \
             are missing from {cur_path}"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn fmt_s(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} us", s * 1e6)
    }
}
