//! Figure 8 — strong and weak scaling of the Helmholtz (kappa = 25)
//! factorization time.

use srsf_bench::{is_large, rule, run_helmholtz_case};
use srsf_core::FactorOpts;
use srsf_runtime::NetworkModel;

fn main() {
    let opts = FactorOpts::default().with_tol(1e-6).with_leaf_size(64);
    let model = NetworkModel::intra_node();
    let kappa = 25.0;
    let large = is_large();

    println!("Figure 8a reproduction: Helmholtz strong scaling (kappa = 25)");
    println!(
        "{:>8} {:>5} {:>12} {:>10}",
        "N", "p", "tmodel[s]", "twall[s]"
    );
    rule(40);
    let sides: &[usize] = if large { &[128, 256] } else { &[64, 128] };
    for &side in sides {
        for p in [1usize, 4, 16] {
            if side / ((p as f64).sqrt() as usize).max(1) < 16 {
                continue;
            }
            let c = run_helmholtz_case(side, p, kappa, &opts, &model);
            println!(
                "{:>8} {:>5} {:>12.3} {:>10.3}",
                side * side,
                p,
                c.tfact_model,
                c.tfact_wall
            );
        }
        rule(40);
    }

    println!();
    println!("Figure 8b reproduction: Helmholtz weak scaling (N/p fixed)");
    println!(
        "{:>8} {:>8} {:>5} {:>12} {:>10}",
        "N/p", "N", "p", "tmodel[s]", "twall[s]"
    );
    rule(48);
    let base: &[usize] = if large { &[64, 128] } else { &[32, 64] };
    for &per in base {
        for (p, mult) in [(1usize, 1usize), (4, 2), (16, 4)] {
            let side = per * mult;
            let c = run_helmholtz_case(side, p, kappa, &opts, &model);
            println!(
                "{:>8} {:>8} {:>5} {:>12.3} {:>10.3}",
                per * per,
                side * side,
                p,
                c.tfact_model,
                c.tfact_wall
            );
        }
        rule(48);
    }
    println!("(paper: Fig. 8 — greater speedups than Laplace because Hankel evaluation dominates)");
}
