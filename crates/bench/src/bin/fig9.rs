//! Figure 9 — average skeleton ranks per tree level for the three kernel
//! configurations: Laplace, Helmholtz (kappa = 25), Helmholtz
//! (kappa = O(sqrt(N))).
//!
//! The paper's observation: ranks are essentially constant in N for the
//! non-oscillatory kernels (the basis of the O(N) claim) and grow with
//! kappa for the high-frequency runs.

use srsf_bench::{is_large, rule, sweep_sides};
use srsf_core::{FactorOpts, Solver};
use srsf_geometry::grid::UnitGrid;
use srsf_kernels::helmholtz::HelmholtzKernel;
use srsf_kernels::laplace::LaplaceKernel;

fn rank_table_for(name: &str, sides: &[usize], make_kappa: impl Fn(usize) -> Option<f64>) {
    println!("{name}");
    let opts = FactorOpts::default().with_tol(1e-6).with_leaf_size(64);
    // Collect per-side rank tables.
    let mut tables = Vec::new();
    for &side in sides {
        let grid = UnitGrid::new(side);
        let pts = grid.points();
        let stats = match make_kappa(side) {
            None => {
                let k = LaplaceKernel::new(&grid);
                Solver::builder(&k, &pts)
                    .opts(opts.clone())
                    .build()
                    .unwrap()
                    .stats()
                    .clone()
            }
            Some(kappa) => {
                let k = HelmholtzKernel::new(&grid, kappa);
                Solver::builder(&k, &pts)
                    .opts(opts.clone())
                    .build()
                    .unwrap()
                    .stats()
                    .clone()
            }
        };
        tables.push((side, stats));
    }
    // Header: one column per N.
    print!("{:>6}", "level");
    for (side, _) in &tables {
        print!(" {:>8}", format!("{side}^2"));
    }
    println!();
    rule(8 + 9 * tables.len());
    let max_level = tables
        .iter()
        .flat_map(|(_, s)| s.rank_table().into_iter().map(|(l, _)| l))
        .max()
        .unwrap_or(0);
    for level in (3..=max_level).rev() {
        print!("{:>6}", level);
        for (_, stats) in &tables {
            match stats.avg_rank(level) {
                Some(r) => print!(" {:>8.1}", r),
                None => print!(" {:>8}", "-"),
            }
        }
        println!();
    }
    println!();
}

fn main() {
    println!("Figure 9 reproduction: average skeleton rank per level (eps = 1e-6)\n");
    let sides = sweep_sides(is_large());
    rank_table_for("Laplace", &sides, |_| None);
    rank_table_for("Helmholtz (kappa = 25)", &sides, |_| Some(25.0));
    rank_table_for("Helmholtz (kappa = pi*sqrt(N)/16)", &sides, |side| {
        Some(core::f64::consts::PI * side as f64 / 16.0)
    });
    println!(
        "(paper: Fig. 9 — Laplace/fixed-kappa ranks ~constant in N; O(sqrt(N))-kappa ranks grow)"
    );
}
