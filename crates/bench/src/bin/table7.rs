//! Table VII / Figure 11 — "1 process per compute node": the same
//! factorization traffic costed under the inter-node network model instead
//! of the intra-node one.
//!
//! The paper reruns experiments with p processes on p separate nodes and
//! finds the extra wall time negligible; here the measured message/word
//! counters are identical by construction, and the two alpha-beta models
//! quantify how little the slower network adds.

use srsf_bench::{is_large, rule, run_helmholtz_case, sweep_procs, sweep_sides};
use srsf_core::FactorOpts;
use srsf_runtime::NetworkModel;

fn main() {
    let opts = FactorOpts::default().with_tol(1e-6).with_leaf_size(64);
    let kappa = 25.0;
    println!("Table VII reproduction: packed (intra-node) vs 1-process-per-node (inter-node)");
    println!("Helmholtz kappa = 25, eps = 1e-6");
    println!(
        "{:>8} {:>5} {:>10} {:>12} {:>12} {:>12} {:>9}",
        "N", "p", "tcomp[s]", "t_intra[s]", "t_inter[s]", "overhead", "max msgs"
    );
    rule(76);
    for side in sweep_sides(is_large()) {
        for p in sweep_procs(side) {
            if p == 1 {
                continue;
            }
            let c = run_helmholtz_case(side, p, kappa, &opts, &NetworkModel::intra_node());
            let t_intra = c.stats.critical_path_s(&NetworkModel::intra_node());
            let t_inter = c.stats.critical_path_s(&NetworkModel::inter_node());
            println!(
                "{:>8} {:>5} {:>10.3} {:>12.4} {:>12.4} {:>11.2}% {:>9}",
                side * side,
                p,
                c.tcomp,
                t_intra,
                t_inter,
                (t_inter / t_intra - 1.0) * 100.0,
                c.stats.max_msgs()
            );
        }
        rule(76);
    }
    println!("(paper: Table VII / Fig. 11 — the extra network cost is negligible because");
    println!(" the algorithm sends O(log N + log p) messages with O(sqrt(N/p)) words)");
}
