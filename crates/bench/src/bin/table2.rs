//! Table II — Laplace kernel: factorization and solve runtimes vs (N, p).
//!
//! Columns mirror the paper: `tfact = tcomp + tother` and `tsolve`, with
//! the modeled critical path added (DESIGN.md §5). Run with `--large` for
//! the extended sweep.

use srsf_bench::{is_large, rule, run_laplace_case, sweep_procs, sweep_sides};
use srsf_core::FactorOpts;
use srsf_runtime::NetworkModel;

fn main() {
    let opts = FactorOpts::default().with_tol(1e-6).with_leaf_size(64);
    let model = NetworkModel::intra_node();
    println!("Table II reproduction: 2-D Laplace kernel, eps = 1e-6");
    println!(
        "{:>8} {:>5} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "N", "p", "tfact[s]", "tcomp[s]", "tother[s]", "tmodel[s]", "tsolve[s]", "relres"
    );
    rule(84);
    for side in sweep_sides(is_large()) {
        for p in sweep_procs(side) {
            let c = run_laplace_case(side, p, &opts, &model);
            println!(
                "{:>8} {:>5} {:>10.3} {:>10.3} {:>10.3} {:>12.3} {:>10.4} {:>10.2e}",
                side * side,
                p,
                c.tfact_wall,
                c.tcomp,
                c.tother,
                c.tfact_model,
                c.tsolve,
                c.relres
            );
        }
        rule(84);
    }
    println!("(paper: Table II, N up to 32768^2 and p up to 1024 on Perlmutter)");
}
