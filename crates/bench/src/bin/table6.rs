//! Table VI / Figure 10 — shared-memory box-colored solver (the paper's
//! C++/OpenMP reference) vs the distributed process-colored solver, across
//! compression tolerances, on one "node".
//!
//! Both drivers share the identical per-box elimination kernel, so the
//! comparison isolates the parallel schedule, exactly as in the paper.

use srsf_bench::rule;
use srsf_core::colored::ColorScheme;
use srsf_core::{Driver, FactorOpts, Solver};
use srsf_geometry::grid::UnitGrid;
use srsf_geometry::procgrid::ProcessGrid;
use srsf_iterative::gmres::GmresOpts;
use srsf_iterative::precond::gmres_factorized;
use srsf_kernels::fast_op::FastKernelOp;
use srsf_kernels::helmholtz::HelmholtzKernel;
use srsf_kernels::util::random_vector;
use srsf_linalg::c64;
use std::time::Instant;

fn main() {
    let side = if srsf_bench::is_large() { 128 } else { 64 };
    let kappa = 25.0;
    let grid = UnitGrid::new(side);
    let kernel = HelmholtzKernel::new(&grid, kappa);
    let pts = grid.points();
    let fast = FastKernelOp::helmholtz(&kernel, &grid);
    let b = random_vector::<c64>(grid.n(), 99);

    println!("Table VI reproduction: box-colored (shared-memory ref) vs process-colored");
    println!("(distributed), Helmholtz kappa = 25, N = {side}^2");
    println!(
        "{:>9} {:>3} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10} {:>4}",
        "eps",
        "p",
        "sh tfact",
        "sh tsolve",
        "sh relres",
        "di tfact",
        "di tsolve",
        "di relres",
        "nit"
    );
    rule(96);
    for eps in [1e-3, 1e-6, 1e-9, 1e-12] {
        let opts = FactorOpts::default().with_tol(eps).with_leaf_size(64);
        for p in [1usize, 4] {
            // Shared-memory reference: box coloring with p worker threads.
            let t0 = Instant::now();
            let fsh = Solver::builder(&kernel, &pts)
                .opts(opts.clone())
                .driver(Driver::Colored {
                    scheme: ColorScheme::Four,
                    threads: p,
                })
                .build()
                .unwrap();
            let sh_fact = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let xsh = fsh.solve(&b);
            let sh_solve = t1.elapsed().as_secs_f64();
            let sh_rel = srsf_linalg::relative_residual(&fast, &xsh, &b);

            // Distributed: p simulated ranks.
            let (di_fact, di_solve, di_rel, fdi) = if p == 1 {
                let t = Instant::now();
                let f = Solver::builder(&kernel, &pts)
                    .opts(opts.clone())
                    .build()
                    .unwrap();
                let tf = t.elapsed().as_secs_f64();
                let t = Instant::now();
                let x = f.solve(&b);
                let ts = t.elapsed().as_secs_f64();
                (tf, ts, srsf_linalg::relative_residual(&fast, &x, &b), f)
            } else {
                let pg = ProcessGrid::new(p);
                let t = Instant::now();
                let (f, x) = Solver::builder(&kernel, &pts)
                    .opts(opts.clone())
                    .driver(Driver::Distributed { grid: pg })
                    .build_with_solution(&b)
                    .unwrap();
                let total = t.elapsed().as_secs_f64();
                let ts = f.stats().solve_s;
                (
                    total - ts,
                    ts,
                    srsf_linalg::relative_residual(&fast, &x, &b),
                    f,
                )
            };
            let nit = gmres_factorized(
                &fast,
                &fdi,
                &b,
                &GmresOpts {
                    restart: 30,
                    tol: 1e-12,
                    max_iters: 200,
                },
            )
            .iterations;
            println!(
                "{:>9.0e} {:>3} | {:>10.3} {:>10.4} {:>10.2e} | {:>10.3} {:>10.4} {:>10.2e} {:>4}",
                eps, p, sh_fact, sh_solve, sh_rel, di_fact, di_solve, di_rel, nit
            );
        }
        rule(96);
    }
    println!("(paper: Table VI / Fig. 10 — the two schedules perform similarly on one node,");
    println!(" with accuracy improving ~3 digits per 3 digits of eps)");
}
