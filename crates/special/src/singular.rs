//! Singular self-interaction integrals for the collocation diagonal.
//!
//! Piecewise-constant collocation on a uniform grid needs, per diagonal
//! entry, the integral of the kernel over one grid cell centered at the
//! collocation point (Eqs. 17 and 21 of the paper). Both kernels have a
//! logarithmic point singularity at the cell center.
//!
//! * Laplace: the log integral has a closed form (derived below), which we
//!   use directly; the adaptive `dblquad` route is kept for cross-checking
//!   (the paper used `MultiQuad.jl`).
//! * Helmholtz: we subtract the log singularity of `Y0` analytically and
//!   integrate the smooth remainders with a tensor Gauss rule.

use crate::bessel::{j0, y0_smooth_remainder, EULER_GAMMA};
use crate::gauss::GaussLegendre;
use crate::quad::dblquad;
use core::f64::consts::PI;

/// Closed form of `∫∫_{[-h/2,h/2]^2} ln ||x|| dx`.
///
/// Derivation: split the square into 8 congruent triangles and integrate in
/// polar coordinates,
/// `I = 8 ∫_0^{π/4} ∫_0^{a/cosθ} ln(r) r dr dθ` with `a = h/2`, giving
/// `I = 4 a^2 [ ln a + (ln 2)/2 − 3/2 + π/4 ]`.
pub fn laplace_log_self_integral(h: f64) -> f64 {
    assert!(h > 0.0);
    let a = 0.5 * h;
    4.0 * a * a * (a.ln() + 0.5 * (2.0f64).ln() - 1.5 + PI / 4.0)
}

/// Same integral via adaptive `dblquad` over the four quadrants
/// (singularity at a corner of each). Used to validate the closed form and
/// to mirror the paper's `MultiQuad.jl` approach.
pub fn laplace_log_self_integral_adaptive(h: f64, tol: f64) -> f64 {
    let a = 0.5 * h;
    let f = |x: f64, y: f64| {
        let r = (x * x + y * y).sqrt();
        if r > 0.0 {
            r.ln()
        } else {
            0.0
        }
    };
    // One quadrant times four, by symmetry.
    let (q, _) = dblquad(f, (0.0, a), (0.0, a), tol / 4.0);
    4.0 * q
}

/// `∫∫_{[-h/2,h/2]^2} (i/4) H0^(1)(kappa ||x||) dx`, returned as
/// `(re, im)`.
///
/// Uses the decomposition `(i/4) H0 = (i/4) J0 − (1/4) Y0` and the splitting
/// `Y0(z) = (2/π)(ln(z/2) + γ) J0(z) + R(z)` with smooth remainder `R`:
///
/// * `∫ J0(kappa r)` — smooth, tensor Gauss;
/// * `∫ ln(r) J0(kappa r) = ∫ ln r + ∫ ln(r)(J0 − 1)` — closed form plus a
///   C¹ integrand handled by Gauss on quadrants;
/// * `∫ R(kappa r)` — smooth, tensor Gauss.
pub fn helmholtz_self_integral(kappa: f64, h: f64) -> (f64, f64) {
    assert!(kappa > 0.0 && h > 0.0);
    let a = 0.5 * h;
    let g = GaussLegendre::new(32);
    // Integrate over one quadrant [0,a]^2 and multiply by 4 (radial symmetry).
    let quad4 = |f: &dyn Fn(f64) -> f64| -> f64 {
        4.0 * g.integrate_2d((0.0, a), (0.0, a), |x, y| {
            let r = (x * x + y * y).sqrt();
            f(r)
        })
    };
    let int_j0 = quad4(&|r| j0(kappa * r));
    // ln(r) * (J0(kappa r) - 1): define the r->0 limit as 0.
    let int_ln_j0m1 = quad4(&|r| {
        if r < 1e-300 {
            0.0
        } else {
            r.ln() * (j0(kappa * r) - 1.0)
        }
    });
    let int_ln = laplace_log_self_integral(h);
    let int_remainder = quad4(&|r| y0_smooth_remainder(kappa * r));
    let int_ln_j0 = int_ln + int_ln_j0m1;
    let int_y0 =
        (2.0 / PI) * (int_ln_j0 + ((kappa / 2.0).ln() + EULER_GAMMA) * int_j0) + int_remainder;
    // (i/4)(J0 + i Y0) = -Y0/4 + i J0/4
    (-0.25 * int_y0, 0.25 * int_j0)
}

/// Brute-force adaptive version of [`helmholtz_self_integral`], quadrant by
/// quadrant. Slow but direct; used in tests and available as the
/// paper-faithful fallback.
pub fn helmholtz_self_integral_adaptive(kappa: f64, h: f64, tol: f64) -> (f64, f64) {
    let a = 0.5 * h;
    let re = |x: f64, y: f64| {
        let r = (x * x + y * y).sqrt();
        if r <= 0.0 {
            return 0.0;
        }
        -0.25 * crate::bessel::y0(kappa * r)
    };
    let im = |x: f64, y: f64| {
        let r = (x * x + y * y).sqrt();
        0.25 * j0(kappa * r)
    };
    let (qr, _) = dblquad(re, (0.0, a), (0.0, a), tol / 4.0);
    let (qi, _) = dblquad(im, (0.0, a), (0.0, a), tol / 4.0);
    (4.0 * qr, 4.0 * qi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_adaptive_quadrature() {
        for &h in &[1.0, 0.25, 1.0 / 64.0] {
            let exact = laplace_log_self_integral(h);
            let adaptive = laplace_log_self_integral_adaptive(h, 1e-10);
            assert!(
                (exact - adaptive).abs() < 1e-6 * exact.abs(),
                "h={h}: {exact} vs {adaptive}"
            );
        }
    }

    #[test]
    fn log_integral_scaling_law() {
        // I(h) = h^2 [ln(h/2) + ln2/2 - 3/2 + pi/4]; check the h^2 ln h scaling.
        let h = 0.1;
        let i1 = laplace_log_self_integral(h);
        let i2 = laplace_log_self_integral(2.0 * h);
        let pred = 4.0 * i1 + 4.0 * h * h * (2.0f64).ln();
        assert!((i2 - pred).abs() < 1e-12 * i2.abs().max(1.0));
    }

    #[test]
    fn helmholtz_diagonal_matches_adaptive() {
        for &(kappa, h) in &[(25.0, 1.0 / 32.0), (5.0, 1.0 / 16.0), (50.0, 1.0 / 64.0)] {
            let (re, im) = helmholtz_self_integral(kappa, h);
            let (are, aim) = helmholtz_self_integral_adaptive(kappa, h, 1e-10);
            let scale = (re * re + im * im).sqrt();
            assert!(
                (re - are).abs() < 1e-5 * scale,
                "kappa={kappa}, h={h}: re {re} vs {are}"
            );
            assert!(
                (im - aim).abs() < 1e-5 * scale,
                "kappa={kappa}, h={h}: im {im} vs {aim}"
            );
        }
    }

    #[test]
    fn helmholtz_small_kappa_h_asymptotics() {
        // For kappa*r -> 0: (i/4)H0(kr) ~ -(1/2pi)[ln(kr/2)+gamma] + i/4.
        // So Im part ~ h^2/4 and Re part ~ -(1/2pi)(ln-ish) * h^2 > 0 for tiny kh.
        let kappa = 1e-3;
        let h = 1e-3;
        let (re, im) = helmholtz_self_integral(kappa, h);
        assert!((im - h * h / 4.0).abs() < 1e-3 * h * h);
        let log_est = -(1.0 / (2.0 * PI))
            * (laplace_log_self_integral(h) + h * h * ((kappa / 2.0).ln() + EULER_GAMMA));
        assert!((re - log_est).abs() < 1e-3 * re.abs());
        assert!(re > 0.0);
    }

    #[test]
    fn laplace_diagonal_entry_sign() {
        // A_ii = -(1/2pi) * I(h) must be positive for small h (log is very
        // negative near the singularity).
        let h = 1.0 / 1024.0;
        let aii = -laplace_log_self_integral(h) / (2.0 * PI);
        assert!(aii > 0.0);
    }
}
