//! Gauss–Legendre quadrature with nodes computed at runtime.
//!
//! Nodes are the roots of the Legendre polynomial `P_n`, found by Newton
//! iteration from the Chebyshev-like initial guess; weights follow from the
//! derivative. Computing them at runtime avoids tabulated constants and
//! supports any order, which the proxy-circle discretization and the smooth
//! parts of the singular diagonal integrals rely on.

/// An `n`-point Gauss–Legendre rule on `[-1, 1]`.
#[derive(Clone, Debug)]
pub struct GaussLegendre {
    /// Nodes in increasing order.
    pub nodes: Vec<f64>,
    /// Positive weights summing to 2.
    pub weights: Vec<f64>,
}

impl GaussLegendre {
    /// Build the `n`-point rule (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "Gauss-Legendre order must be at least 1");
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        let m = n.div_ceil(2);
        for i in 0..m {
            // Initial guess for the i-th root (descending), then Newton.
            let mut x = (core::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            let mut dp = 0.0;
            for _ in 0..100 {
                // Evaluate P_n(x) and P_n'(x) by the three-term recurrence.
                let mut p0 = 1.0;
                let mut p1 = x;
                for k in 2..=n {
                    let kf = k as f64;
                    let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
                    p0 = p1;
                    p1 = p2;
                }
                let pn = if n == 1 { x } else { p1 };
                let pn1 = if n == 1 { 1.0 } else { p0 };
                dp = n as f64 * (x * pn - pn1) / (x * x - 1.0);
                let dx = pn / dp;
                x -= dx;
                if dx.abs() < 1e-15 {
                    break;
                }
            }
            let w = 2.0 / ((1.0 - x * x) * dp * dp);
            nodes[i] = -x;
            nodes[n - 1 - i] = x;
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
        if n % 2 == 1 {
            // The middle node of odd rules is exactly zero.
            nodes[n / 2] = 0.0;
        }
        Self { nodes, weights }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for the (impossible) empty rule; kept for API completeness.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Integrate `f` over `[a, b]`.
    pub fn integrate(&self, a: f64, b: f64, mut f: impl FnMut(f64) -> f64) -> f64 {
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        let mut acc = 0.0;
        for (x, w) in self.nodes.iter().zip(self.weights.iter()) {
            acc += w * f(mid + half * x);
        }
        acc * half
    }

    /// Tensor-product integration of `f(x, y)` over `[ax,bx] x [ay,by]`.
    pub fn integrate_2d(
        &self,
        (ax, bx): (f64, f64),
        (ay, by): (f64, f64),
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> f64 {
        let hx = 0.5 * (bx - ax);
        let mx = 0.5 * (ax + bx);
        let hy = 0.5 * (by - ay);
        let my = 0.5 * (ay + by);
        let mut acc = 0.0;
        for (xi, wi) in self.nodes.iter().zip(self.weights.iter()) {
            let x = mx + hx * xi;
            let mut row = 0.0;
            for (yj, wj) in self.nodes.iter().zip(self.weights.iter()) {
                row += wj * f(x, my + hy * yj);
            }
            acc += wi * row;
        }
        acc * hx * hy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_two_and_nodes_symmetric() {
        for n in [1, 2, 3, 5, 8, 16, 33, 64] {
            let g = GaussLegendre::new(n);
            let sum: f64 = g.weights.iter().sum();
            assert!((sum - 2.0).abs() < 1e-13, "n={n}: weight sum {sum}");
            for i in 0..n {
                assert!(
                    (g.nodes[i] + g.nodes[n - 1 - i]).abs() < 1e-13,
                    "n={n}: nodes not symmetric"
                );
                assert!(g.weights[i] > 0.0);
            }
            for i in 1..n {
                assert!(g.nodes[i] > g.nodes[i - 1], "nodes must increase");
            }
        }
    }

    #[test]
    fn exact_for_polynomials_up_to_degree_2n_minus_1() {
        for n in [2usize, 4, 7] {
            let g = GaussLegendre::new(n);
            for d in 0..(2 * n) {
                let got = g.integrate(-1.0, 1.0, |x| x.powi(d as i32));
                let want = if d % 2 == 0 {
                    2.0 / (d as f64 + 1.0)
                } else {
                    0.0
                };
                assert!(
                    (got - want).abs() < 1e-12,
                    "n={n}, degree {d}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn known_16pt_extreme_node() {
        // x_max of the 16-point rule (reference: 0.9894009349916499).
        let g = GaussLegendre::new(16);
        assert!((g.nodes[15] - 0.989_400_934_991_649_9).abs() < 1e-13);
        assert!((g.weights[15] - 0.027_152_459_411_754_095).abs() < 1e-13);
    }

    #[test]
    fn integrates_smooth_functions() {
        let g = GaussLegendre::new(24);
        let got = g.integrate(0.0, 1.0, |x| (3.0 * x).exp());
        let want = ((3.0f64).exp() - 1.0) / 3.0;
        assert!((got - want).abs() < 1e-12);
        let got2 = g.integrate(0.0, core::f64::consts::PI, f64::sin);
        assert!((got2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tensor_2d_rule() {
        let g = GaussLegendre::new(20);
        // ∫∫ x^2 y^3 over [0,1]x[0,2] = (1/3)(16/4) = 4/3
        let got = g.integrate_2d((0.0, 1.0), (0.0, 2.0), |x, y| x * x * y * y * y);
        assert!((got - 4.0 / 3.0).abs() < 1e-12);
        // Separable exponential.
        let got2 = g.integrate_2d((0.0, 1.0), (0.0, 1.0), |x, y| (x + y).exp());
        let e = core::f64::consts::E;
        let want = (e - 1.0) * (e - 1.0);
        assert!((got2 - want).abs() < 1e-12);
    }
}
