//! `srsf-special`: special functions and quadrature for the srsf solver.
//!
//! * [`bessel`] — double-precision Bessel functions `J0, J1, Y0, Y1` and the
//!   Hankel function `H0^(1)` needed by the 2-D Helmholtz kernel (Eq. 19 of
//!   the paper). Ported from the Cephes rational approximations and
//!   validated against high-precision reference values, the Wronskian
//!   identity, and the ascending series.
//! * [`gauss`] — Gauss–Legendre rules with runtime node computation (no
//!   tabulated magic constants).
//! * [`quad`] — adaptive 1-D quadrature and a nested adaptive `dblquad`
//!   equivalent (the paper evaluates its singular diagonal entries with
//!   `MultiQuad.jl`'s `dblquad`).
//! * [`singular`] — self-interaction integrals for the collocation diagonal:
//!   the closed-form log integral for Laplace (Eq. 17) and a
//!   singularity-subtracted evaluation of the Helmholtz diagonal (Eq. 21).

#![forbid(unsafe_code)]

pub mod bessel;
pub mod gauss;
pub mod quad;
pub mod singular;

pub use bessel::{hankel0_1, j0, j1, y0, y1};
pub use gauss::GaussLegendre;
pub use quad::{adaptive_quad, dblquad};
pub use singular::{helmholtz_self_integral, laplace_log_self_integral};
