//! Adaptive quadrature: 1-D and nested 2-D (`dblquad`).
//!
//! The error estimator compares a 10-point Gauss–Legendre evaluation of an
//! interval against the sum over its two halves and bisects until the
//! difference meets the local tolerance. No tabulated embedded-rule
//! constants are needed, and the estimator is reliable for the integrands
//! appearing here (smooth away from an integrable log point singularity).
//!
//! This is the Rust stand-in for `MultiQuad.jl`'s `dblquad`, which the paper
//! uses for the singular diagonal entries (Eqs. 17 and 21).

use crate::gauss::GaussLegendre;

/// Diagnostics from an adaptive integration.
#[derive(Clone, Copy, Debug, Default)]
pub struct QuadStats {
    /// Function evaluations performed.
    pub evals: usize,
    /// Deepest bisection level reached.
    pub max_depth: usize,
    /// `true` if some subinterval hit the depth limit before converging.
    pub depth_exhausted: bool,
}

#[allow(clippy::too_many_arguments)]
fn adaptive_rec(
    f: &mut dyn FnMut(f64) -> f64,
    rule: &GaussLegendre,
    a: f64,
    b: f64,
    whole: f64,
    tol: f64,
    depth: usize,
    max_depth: usize,
    stats: &mut QuadStats,
) -> f64 {
    let mid = 0.5 * (a + b);
    let left = rule.integrate(a, mid, &mut *f);
    let right = rule.integrate(mid, b, &mut *f);
    stats.evals += 2 * rule.len();
    stats.max_depth = stats.max_depth.max(depth);
    let refined = left + right;
    let err = (refined - whole).abs();
    if err <= tol || depth >= max_depth {
        if depth >= max_depth && err > tol {
            stats.depth_exhausted = true;
        }
        // Richardson-style correction: the refined value plus the estimated
        // remaining error direction.
        refined + (refined - whole) / 1023.0
    } else {
        let half_tol = 0.5 * tol;
        adaptive_rec(f, rule, a, mid, left, half_tol, depth + 1, max_depth, stats)
            + adaptive_rec(
                f,
                rule,
                mid,
                b,
                right,
                half_tol,
                depth + 1,
                max_depth,
                stats,
            )
    }
}

/// Adaptively integrate `f` over `[a, b]` to absolute tolerance `tol`.
pub fn adaptive_quad(mut f: impl FnMut(f64) -> f64, a: f64, b: f64, tol: f64) -> (f64, QuadStats) {
    assert!(tol > 0.0, "tolerance must be positive");
    assert!(a.is_finite() && b.is_finite(), "bounds must be finite");
    let rule = GaussLegendre::new(10);
    let mut stats = QuadStats::default();
    let whole = rule.integrate(a, b, &mut f);
    stats.evals += rule.len();
    let mut g: &mut dyn FnMut(f64) -> f64 = &mut f;
    let v = adaptive_rec(&mut g, &rule, a, b, whole, tol, 0, 48, &mut stats);
    (v, stats)
}

/// Adaptive 2-D integration of `f(x, y)` over a rectangle
/// (`dblquad` equivalent): an adaptive outer integral over `x` of adaptive
/// inner integrals over `y`.
///
/// The inner tolerance is tightened relative to the outer one so inner
/// errors do not pollute the outer error estimator.
pub fn dblquad(
    f: impl Fn(f64, f64) -> f64,
    (ax, bx): (f64, f64),
    (ay, by): (f64, f64),
    tol: f64,
) -> (f64, QuadStats) {
    let inner_tol = tol / (10.0 * (bx - ax).abs().max(1.0));
    let mut total_stats = QuadStats::default();
    let stats_cell = core::cell::RefCell::new(&mut total_stats);
    let outer = |x: f64| -> f64 {
        let (v, s) = adaptive_quad(|y| f(x, y), ay, by, inner_tol);
        let mut st = stats_cell.borrow_mut();
        st.evals += s.evals;
        st.max_depth = st.max_depth.max(s.max_depth);
        st.depth_exhausted |= s.depth_exhausted;
        v
    };
    let (v, outer_stats) = adaptive_quad(outer, ax, bx, tol);
    total_stats.max_depth = total_stats.max_depth.max(outer_stats.max_depth);
    total_stats.depth_exhausted |= outer_stats.depth_exhausted;
    (v, total_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::PI;

    #[test]
    fn integrates_smooth_1d() {
        let (v, s) = adaptive_quad(|x| x.sin(), 0.0, PI, 1e-12);
        assert!((v - 2.0).abs() < 1e-11, "{v}");
        assert!(s.evals >= 10);
        assert!(!s.depth_exhausted);
    }

    #[test]
    fn integrates_oscillatory() {
        // ∫_0^1 cos(50 x) dx = sin(50)/50
        let (v, _) = adaptive_quad(|x| (50.0 * x).cos(), 0.0, 1.0, 1e-12);
        assert!((v - (50.0f64).sin() / 50.0).abs() < 1e-11);
    }

    #[test]
    fn integrates_log_singularity_at_endpoint() {
        // ∫_0^1 ln x dx = -1; singular at the left endpoint.
        let (v, _) = adaptive_quad(|x| if x > 0.0 { x.ln() } else { 0.0 }, 0.0, 1.0, 1e-10);
        assert!((v + 1.0).abs() < 1e-7, "{v}");
    }

    #[test]
    fn integrates_sqrt_singularity() {
        // ∫_0^1 1/sqrt(x) dx = 2.
        let (v, _) = adaptive_quad(
            |x| if x > 0.0 { x.sqrt().recip() } else { 0.0 },
            0.0,
            1.0,
            1e-9,
        );
        assert!((v - 2.0).abs() < 1e-5, "{v}");
    }

    #[test]
    fn dblquad_polynomial() {
        let (v, _) = dblquad(|x, y| x * x + y, (0.0, 1.0), (0.0, 2.0), 1e-11);
        // ∫∫ = 2/3 + 1*2 = 2/3 + 2
        assert!((v - (2.0 / 3.0 + 2.0)).abs() < 1e-10, "{v}");
    }

    #[test]
    fn dblquad_gaussian() {
        let (v, _) = dblquad(
            |x, y| (-(x * x + y * y)).exp(),
            (-4.0, 4.0),
            (-4.0, 4.0),
            1e-10,
        );
        // ≈ pi * erf(4)^2; erf(4) = 0.9999999845827421
        let erf4 = 0.999_999_984_582_742_1;
        assert!((v - PI * erf4 * erf4).abs() < 1e-8, "{v}");
    }

    #[test]
    fn dblquad_log_corner_singularity() {
        // ∫∫_{[0,1]^2} ln(sqrt(x^2+y^2)) dx dy — singular at the origin.
        // Closed form: quadrant version of the square log integral:
        //   = ln(1)/... derived from I(h) with h=2 on [-1,1]^2 / 4.
        // ∫∫_{[-1,1]^2} ln r = 4 [ ln 1 + ln(2)/2 - 3/2 + pi/4 ] (a=1)
        let whole = 4.0 * (0.5 * (2.0f64).ln() - 1.5 + PI / 4.0);
        let want = whole / 4.0;
        let (v, _) = dblquad(
            |x, y| {
                let r = (x * x + y * y).sqrt();
                if r > 0.0 {
                    r.ln()
                } else {
                    0.0
                }
            },
            (0.0, 1.0),
            (0.0, 1.0),
            1e-9,
        );
        assert!((v - want).abs() < 1e-6, "{v} vs {want}");
    }
}
