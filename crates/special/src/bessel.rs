//! Bessel functions of the first and second kind, orders 0 and 1, and the
//! Hankel function `H0^(1)(x) = J0(x) + i Y0(x)`.
//!
//! Implementation strategy (self-derived, no tabulated rational fits):
//!
//! * `x < SWITCH` (= 11): ascending power series (A&S 9.1.10 / 9.1.13 /
//!   9.1.11). The series alternate, so cancellation grows with `x`; at the
//!   switch point the largest term is ~2e4, costing ~4 digits — absolute
//!   error stays below ~5e-12.
//! * `x >= SWITCH`: Hankel's modulus/phase asymptotic expansions
//!   (A&S 9.2.5–9.2.10) with adaptive truncation at the smallest term; at
//!   `8x >= 88` the smallest term is far below 1e-13.
//!
//! The worst-case absolute error (~1e-12, near the switch) is comfortably
//! below every compression tolerance the paper sweeps (1e-3 … 1e-12
//! *relative* to matrix norms), and both the matrix assembly and the FFT
//! residual path evaluate the same functions, so comparisons stay
//! consistent.
//!
//! The Helmholtz kernel of the paper (Eq. 19) calls `H0^(1)(kappa r)` once
//! per matrix entry, making these the hottest scalar routines in the
//! Helmholtz experiments — the paper observes exactly that ("an evaluation
//! of the complex Helmholtz kernel takes longer").

use core::f64::consts::{FRAC_PI_4, PI};

/// Euler–Mascheroni constant.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

const TWO_OVER_PI: f64 = 2.0 / PI;
const THREE_PI_4: f64 = 3.0 * FRAC_PI_4;
const SWITCH: f64 = 11.0;

/// Ascending series for `J0` (A&S 9.1.10 with nu = 0).
fn j0_series(x: f64) -> f64 {
    let q = x * x * 0.25;
    let mut term = 1.0;
    let mut acc = 1.0;
    for k in 1..200 {
        term *= -q / ((k * k) as f64);
        acc += term;
        if term.abs() < 1e-17 * acc.abs().max(1.0) {
            break;
        }
    }
    acc
}

/// Ascending series for `J1` (A&S 9.1.10 with nu = 1).
fn j1_series(x: f64) -> f64 {
    let q = x * x * 0.25;
    let mut term = 0.5 * x; // k = 0 term: (x/2) / (0! 1!)
    let mut acc = term;
    for k in 1..200 {
        term *= -q / ((k * (k + 1)) as f64);
        acc += term;
        if term.abs() < 1e-17 * acc.abs().max(1e-300) {
            break;
        }
    }
    acc
}

/// Hankel asymptotic modulus/phase pieces `(P_n, Q_n)` for order `n`.
///
/// `P = sum (-1)^m a_{2m} / ((2m)! (8x)^{2m})`,
/// `Q = sum (-1)^m a_{2m+1} / ((2m+1)! (8x)^{2m+1})` with
/// `a_k = prod_{j=1..k} (4 n^2 - (2j-1)^2)`. Terms are added while they
/// shrink (optimal truncation of the divergent series).
fn hankel_pq(n: u32, x: f64) -> (f64, f64) {
    let mu = (4 * n * n) as f64;
    let inv8x = 1.0 / (8.0 * x);
    let mut p = 1.0;
    let mut q = 0.0;
    // term_k = a_k / (k! (8x)^k), signs (-1)^{floor(k/2)} applied per pair.
    let mut term = 1.0;
    let mut prev_mag = f64::INFINITY;
    for k in 1..60u32 {
        let odd = (2 * k - 1) as f64;
        term *= (mu - odd * odd) / k as f64 * inv8x;
        let mag = term.abs();
        if mag >= prev_mag || mag < 1e-18 {
            break; // asymptotic series started diverging or converged
        }
        prev_mag = mag;
        let m = k / 2;
        let sign = if m % 2 == 0 { 1.0 } else { -1.0 };
        if k % 2 == 1 {
            q += sign * term;
        } else {
            p += sign * term;
        }
    }
    (p, q)
}

/// Bessel function of the first kind, order zero.
pub fn j0(x: f64) -> f64 {
    let x = x.abs();
    if x < SWITCH {
        j0_series(x)
    } else {
        let (p, q) = hankel_pq(0, x);
        let chi = x - FRAC_PI_4;
        (TWO_OVER_PI / x).sqrt() * (p * chi.cos() - q * chi.sin())
    }
}

/// Bessel function of the second kind, order zero. Requires `x > 0`.
pub fn y0(x: f64) -> f64 {
    assert!(x > 0.0, "y0 requires a positive argument, got {x}");
    if x < SWITCH {
        TWO_OVER_PI * ((x / 2.0).ln() + EULER_GAMMA) * j0_series(x) + y0_remainder_series(x)
    } else {
        let (p, q) = hankel_pq(0, x);
        let chi = x - FRAC_PI_4;
        (TWO_OVER_PI / x).sqrt() * (p * chi.sin() + q * chi.cos())
    }
}

/// Bessel function of the first kind, order one (odd in `x`).
pub fn j1(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    if x < SWITCH {
        sign * j1_series(x)
    } else {
        let (p, q) = hankel_pq(1, x);
        let chi = x - THREE_PI_4;
        sign * (TWO_OVER_PI / x).sqrt() * (p * chi.cos() - q * chi.sin())
    }
}

/// Bessel function of the second kind, order one. Requires `x > 0`.
pub fn y1(x: f64) -> f64 {
    assert!(x > 0.0, "y1 requires a positive argument, got {x}");
    if x < SWITCH {
        // A&S 9.1.11 (n = 1):
        // Y1 = (2/pi) ln(x/2) J1 - (2/(pi x))
        //      - (1/pi) sum_k (-1)^k [psi(k+1) + psi(k+2)] / (k!(k+1)!) (x/2)^{2k+1}
        // with psi(1) = -gamma, psi(m+1) = -gamma + H_m.
        let q = x * x * 0.25;
        let mut term = 0.5 * x; // (x/2)^{2k+1} / (k!(k+1)!) at k=0
        let mut hk = 0.0; // H_k
        let mut hk1 = 1.0; // H_{k+1}
        let mut acc = term * (-2.0 * EULER_GAMMA + hk + hk1);
        for k in 1..200 {
            term *= -q / ((k * (k + 1)) as f64);
            hk += 1.0 / k as f64;
            hk1 += 1.0 / (k + 1) as f64;
            let contrib = term * (-2.0 * EULER_GAMMA + hk + hk1);
            acc += contrib;
            if term.abs() * (hk + hk1 + 2.0) < 1e-17 * acc.abs().max(1e-300) {
                break;
            }
        }
        TWO_OVER_PI * (x / 2.0).ln() * j1_series(x) - TWO_OVER_PI / x - acc / PI
    } else {
        let (p, q) = hankel_pq(1, x);
        let chi = x - THREE_PI_4;
        (TWO_OVER_PI / x).sqrt() * (p * chi.sin() + q * chi.cos())
    }
}

/// Hankel function of the first kind, order zero:
/// `H0^(1)(x) = J0(x) + i Y0(x)`, returned as `(re, im)`.
pub fn hankel0_1(x: f64) -> (f64, f64) {
    (j0(x), y0(x))
}

/// `(2/pi) * sum_{k>=1} (-1)^{k+1} H_k (z^2/4)^k / (k!)^2`, the series part
/// of `Y0` after removing the log term.
fn y0_remainder_series(z: f64) -> f64 {
    let q = z * z * 0.25;
    let mut term = 1.0;
    let mut hk = 0.0;
    let mut acc = 0.0;
    for k in 1..200usize {
        term *= q / ((k * k) as f64);
        hk += 1.0 / k as f64;
        acc += if k % 2 == 1 { hk * term } else { -hk * term };
        if term * hk < 1e-17 * acc.abs().max(1e-300) {
            break;
        }
    }
    TWO_OVER_PI * acc
}

/// The smooth remainder `R(z) = Y0(z) - (2/pi)(ln(z/2) + gamma) J0(z)`.
///
/// `R` is entire; it is the piece of `Y0` left after peeling off the
/// logarithmic singularity, used by the singularity-subtracted Helmholtz
/// diagonal integral.
pub fn y0_smooth_remainder(z: f64) -> f64 {
    if z < SWITCH {
        y0_remainder_series(z)
    } else {
        y0(z) - TWO_OVER_PI * ((z / 2.0).ln() + EULER_GAMMA) * j0(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values (Abramowitz & Stegun / mpmath, 15+ digits).
    const REFS_J0: [(f64, f64); 7] = [
        (0.5, 0.938_469_807_240_813),
        (1.0, 0.765_197_686_557_966_6),
        (2.0, 0.223_890_779_141_235_67),
        (5.0, -0.177_596_771_314_338_3),
        (10.0, -0.245_935_764_451_348_34),
        (20.0, 0.167_024_664_340_583_13),
        (50.0, 0.055_812_327_669_251_75),
    ];
    const REFS_Y0: [(f64, f64); 6] = [
        (0.5, -0.444_518_733_506_707),
        (1.0, 0.088_256_964_215_676_96),
        (2.0, 0.510_375_672_649_745_1),
        (5.0, -0.308_517_625_249_033_8),
        (10.0, 0.055_671_167_283_599_395),
        (20.0, 0.062_640_596_809_384_05),
    ];
    const REFS_J1: [(f64, f64); 6] = [
        (0.5, 0.242_268_457_674_873_9),
        (1.0, 0.440_050_585_744_933_5),
        (2.0, 0.576_724_807_756_873_4),
        (5.0, -0.327_579_137_591_465_2),
        (10.0, 0.043_472_746_168_861_44),
        (20.0, 0.066_833_124_175_850_05),
    ];
    const REFS_Y1: [(f64, f64); 5] = [
        (0.5, -1.471_472_392_670_243),
        (1.0, -0.781_212_821_300_288_7),
        (5.0, 0.147_863_143_391_226_8),
        (10.0, 0.249_015_424_206_953_9),
        (20.0, -0.165_511_614_362_521_86),
    ];

    const TOL: f64 = 5e-12;

    #[test]
    fn j0_reference_values() {
        for &(x, want) in &REFS_J0 {
            let got = j0(x);
            assert!((got - want).abs() < TOL, "j0({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn y0_reference_values() {
        for &(x, want) in &REFS_Y0 {
            let got = y0(x);
            assert!((got - want).abs() < TOL, "y0({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn j1_reference_values() {
        for &(x, want) in &REFS_J1 {
            let got = j1(x);
            assert!((got - want).abs() < TOL, "j1({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn y1_reference_values() {
        for &(x, want) in &REFS_Y1 {
            let got = y1(x);
            assert!((got - want).abs() < TOL, "y1({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn wronskian_identity() {
        // J1(x) Y0(x) - J0(x) Y1(x) = 2/(pi x): a strong joint consistency
        // check across both regimes and the switch point.
        let mut x = 0.01;
        while x < 300.0 {
            let w = j1(x) * y0(x) - j0(x) * y1(x);
            let want = TWO_OVER_PI / x;
            assert!(
                (w - want).abs() < 5e-12 * want.abs().max(1e-2),
                "Wronskian at x={x}: {w} vs {want}"
            );
            x *= 1.13;
        }
    }

    #[test]
    fn accuracy_straddling_branch_switch() {
        // mpmath (30 digits) references on both sides of SWITCH = 11, the
        // worst-accuracy region for both the series and the asymptotics.
        let refs: [(f64, [f64; 4]); 4] = [
            (
                10.5,
                [
                    -0.236_648_194_462_347_13,
                    -0.067_530_372_497_876_4,
                    -0.078_850_014_227_331_5,
                    0.233_704_228_357_268_6,
                ],
            ),
            (
                10.9,
                [
                    -0.188_062_245_963_342_07,
                    -0.151_583_193_223_045_1,
                    -0.160_349_686_680_853_33,
                    0.181_318_509_674_164_25,
                ],
            ),
            (
                11.1,
                [
                    -0.152_768_295_435_676_89,
                    -0.184_275_771_621_513_67,
                    -0.191_328_287_775_049_14,
                    0.144_637_110_206_295_12,
                ],
            ),
            (
                12.0,
                [
                    0.047_689_310_796_833_54,
                    -0.225_237_312_634_361_43,
                    -0.223_447_104_490_627_6,
                    -0.057_099_218_260_896_52,
                ],
            ),
        ];
        for &(x, [rj0, ry0, rj1, ry1]) in &refs {
            assert!((j0(x) - rj0).abs() < 1e-11, "j0({x}) = {}", j0(x));
            assert!((y0(x) - ry0).abs() < 1e-11, "y0({x}) = {}", y0(x));
            assert!((j1(x) - rj1).abs() < 1e-11, "j1({x}) = {}", j1(x));
            assert!((y1(x) - ry1).abs() < 1e-11, "y1({x}) = {}", y1(x));
        }
    }

    #[test]
    fn j1_odd_j0_even() {
        for &x in &[0.3, 1.0, 4.0, 9.0, 15.0] {
            assert_eq!(j0(-x), j0(x));
            assert_eq!(j1(-x), -j1(x));
        }
    }

    #[test]
    fn y0_log_singularity_shape() {
        // Y0(z) ~ (2/pi)(ln(z/2) + gamma) as z -> 0.
        for &z in &[1e-8, 1e-6, 1e-4] {
            let want = TWO_OVER_PI * ((z / 2.0f64).ln() + EULER_GAMMA);
            assert!((y0(z) - want).abs() < 1e-8 * want.abs());
        }
    }

    #[test]
    fn y1_small_argument_pole() {
        // Y1(z) ~ -2/(pi z) as z -> 0.
        for &z in &[1e-8, 1e-6] {
            let want = -TWO_OVER_PI / z;
            assert!((y1(z) - want).abs() < 1e-6 * want.abs());
        }
    }

    #[test]
    fn hankel_combines_j_and_y() {
        let (re, im) = hankel0_1(2.5);
        assert_eq!(re, j0(2.5));
        assert_eq!(im, y0(2.5));
    }

    #[test]
    fn smooth_remainder_consistent_across_branch() {
        for &z in &[10.5, 10.9, 11.1, 12.0] {
            let direct = y0(z) - TWO_OVER_PI * ((z / 2.0f64).ln() + EULER_GAMMA) * j0(z);
            let api = y0_smooth_remainder(z);
            assert!(
                (api - direct).abs() < 1e-9,
                "remainder mismatch at z={z}: {api} vs {direct}"
            );
        }
        // Tiny z: remainder ~ (2/pi) * z^2/4 up to the O(z^4) series tail.
        let z = 1e-4;
        let want = TWO_OVER_PI * z * z / 4.0;
        assert!((y0_smooth_remainder(z) - want).abs() < 1e-16);
    }

    #[test]
    fn bessel_recurrence_j2() {
        // J2(x) = (2/x) J1(x) - J0(x); check against a reference value.
        // J2(3) = 0.486091260585891.
        let x = 3.0;
        let j2 = 2.0 / x * j1(x) - j0(x);
        assert!((j2 - 0.486_091_260_585_891).abs() < 1e-11);
    }

    #[test]
    #[should_panic]
    fn y0_rejects_nonpositive() {
        let _ = y0(0.0);
    }
}
