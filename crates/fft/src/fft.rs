//! Iterative radix-2 Cooley–Tukey FFT over [`c64`].
//!
//! A [`Fft`] plan precomputes the bit-reversal permutation and twiddle
//! factors for a fixed power-of-two length; forward and inverse transforms
//! then run allocation-free on caller buffers. All grid sizes in the solver
//! are powers of two (the circulant embedding doubles a power-of-two grid),
//! so radix-2 suffices.

use srsf_linalg::c64;

/// FFT plan for a fixed power-of-two length.
#[derive(Clone, Debug)]
pub struct Fft {
    n: usize,
    rev: Vec<u32>,
    /// Twiddles for the forward transform, grouped per butterfly stage.
    twiddles: Vec<c64>,
}

impl Fft {
    /// Build a plan for length `n` (must be a power of two, `n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "FFT length must be a power of two, got {n}"
        );
        let log2 = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for i in 0..n {
            rev[i] = (rev[i >> 1] >> 1) | (((i & 1) as u32) << (log2.saturating_sub(1)));
        }
        // Stage `s` (half-size m = 2^s) uses twiddles e^{-2 pi i k / 2^{s+1}},
        // k = 0..m; all stages flattened into one vector (total n - 1 entries).
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut m = 1;
        while m < n {
            for k in 0..m {
                let ang = -core::f64::consts::PI * (k as f64) / (m as f64);
                twiddles.push(c64::from_polar(1.0, ang));
            }
            m <<= 1;
        }
        Self { n, rev, twiddles }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` only for the degenerate length-0 plan (not constructible).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn transform(&self, data: &mut [c64], inverse: bool) {
        let n = self.n;
        assert_eq!(data.len(), n, "buffer length must match plan");
        if n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterfly stages.
        let mut m = 1;
        let mut toff = 0;
        while m < n {
            for start in (0..n).step_by(2 * m) {
                for k in 0..m {
                    let w = if inverse {
                        self.twiddles[toff + k].conj()
                    } else {
                        self.twiddles[toff + k]
                    };
                    let a = data[start + k];
                    let b = data[start + k + m] * w;
                    data[start + k] = a + b;
                    data[start + k + m] = a - b;
                }
            }
            toff += m;
            m <<= 1;
        }
        if inverse {
            let scale = 1.0 / n as f64;
            for v in data.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }

    /// In-place forward DFT (negative-exponent convention, unnormalized).
    pub fn forward(&self, data: &mut [c64]) {
        self.transform(data, false);
    }

    /// In-place inverse DFT (normalized by `1/n`).
    pub fn inverse(&self, data: &mut [c64]) {
        self.transform(data, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[c64]) -> Vec<c64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = c64::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let ang = -2.0 * core::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc += v * c64::from_polar(1.0, ang);
                }
                acc
            })
            .collect()
    }

    fn rand_signal(n: usize, seed: u64) -> Vec<c64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let re = (state % 1000) as f64 / 500.0 - 1.0;
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let im = (state % 1000) as f64 / 500.0 - 1.0;
                c64::new(re, im)
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let x = rand_signal(n, n as u64 + 3);
            let mut y = x.clone();
            Fft::new(n).forward(&mut y);
            let want = naive_dft(&x);
            for (a, b) in y.iter().zip(want.iter()) {
                assert!((*a - *b).norm() < 1e-10 * (n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        for n in [2usize, 16, 256, 1024] {
            let x = rand_signal(n, 77);
            let plan = Fft::new(n);
            let mut y = x.clone();
            plan.forward(&mut y);
            plan.inverse(&mut y);
            for (a, b) in y.iter().zip(x.iter()) {
                assert!((*a - *b).norm() < 1e-12, "n={n}");
            }
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 512;
        let x = rand_signal(n, 5);
        let mut y = x.clone();
        Fft::new(n).forward(&mut y);
        let ex: f64 = x.iter().map(|v| v.norm_sq()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sq()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() < 1e-9 * ex);
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let n = 64;
        let mut x = vec![c64::ZERO; n];
        x[0] = c64::ONE;
        Fft::new(n).forward(&mut x);
        for v in &x {
            assert!((*v - c64::ONE).norm() < 1e-13);
        }
    }

    #[test]
    fn pure_tone_peaks_at_its_bin() {
        let n = 128;
        let bin = 9;
        let x: Vec<c64> = (0..n)
            .map(|j| {
                c64::from_polar(
                    1.0,
                    2.0 * core::f64::consts::PI * (bin * j) as f64 / n as f64,
                )
            })
            .collect();
        let mut y = x.clone();
        Fft::new(n).forward(&mut y);
        for (k, v) in y.iter().enumerate() {
            if k == bin {
                assert!((v.norm() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.norm() < 1e-9, "leakage at bin {k}: {}", v.norm());
            }
        }
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = Fft::new(12);
    }
}
