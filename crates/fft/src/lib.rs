//! `srsf-fft`: FFT substrate for fast dense-kernel matrix-vector products.
//!
//! On a uniform collocation grid the kernel matrix is translation invariant
//! (block Toeplitz with Toeplitz blocks, up to diagonal corrections and
//! separable scalings). Embedding the generating symbol into a circulant of
//! twice the size turns the matvec into two 2-D FFTs — the same trick the
//! paper uses to evaluate residuals `||Ax - b|| / ||b||` at billion-row
//! scale without a fast multipole method.
//!
//! * [`fft`] — iterative radix-2 complex FFT with precomputed twiddles.
//! * [`fft2`] — row/column 2-D transforms.
//! * [`toeplitz`] — the circulant-embedded fast matvec.

#![forbid(unsafe_code)]

pub mod fft;
pub mod fft2;
pub mod toeplitz;

pub use fft::Fft;
pub use fft2::Fft2;
pub use toeplitz::Toeplitz2D;
