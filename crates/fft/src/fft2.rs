//! 2-D FFT on row-major grids.

use crate::fft::Fft;
use srsf_linalg::c64;

/// 2-D FFT plan for an `nx x ny` grid stored row-major
/// (`data[iy * nx + ix]`).
#[derive(Clone, Debug)]
pub struct Fft2 {
    nx: usize,
    ny: usize,
    row_plan: Fft,
    col_plan: Fft,
}

impl Fft2 {
    /// Build a plan; both dimensions must be powers of two.
    pub fn new(nx: usize, ny: usize) -> Self {
        Self {
            nx,
            ny,
            row_plan: Fft::new(nx),
            col_plan: Fft::new(ny),
        }
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    fn transform(&self, data: &mut [c64], inverse: bool) {
        assert_eq!(data.len(), self.nx * self.ny);
        // Rows: contiguous.
        for iy in 0..self.ny {
            let row = &mut data[iy * self.nx..(iy + 1) * self.nx];
            if inverse {
                self.row_plan.inverse(row);
            } else {
                self.row_plan.forward(row);
            }
        }
        // Columns: gather into scratch, transform, scatter back.
        let mut scratch = vec![c64::ZERO; self.ny];
        for ix in 0..self.nx {
            for iy in 0..self.ny {
                scratch[iy] = data[iy * self.nx + ix];
            }
            if inverse {
                self.col_plan.inverse(&mut scratch);
            } else {
                self.col_plan.forward(&mut scratch);
            }
            for iy in 0..self.ny {
                data[iy * self.nx + ix] = scratch[iy];
            }
        }
    }

    /// In-place forward 2-D DFT.
    pub fn forward(&self, data: &mut [c64]) {
        self.transform(data, false);
    }

    /// In-place inverse 2-D DFT (normalized by `1/(nx ny)`).
    pub fn inverse(&self, data: &mut [c64]) {
        self.transform(data, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let (nx, ny) = (8, 16);
        let x: Vec<c64> = (0..nx * ny)
            .map(|i| c64::new((i % 7) as f64 - 3.0, (i % 5) as f64))
            .collect();
        let plan = Fft2::new(nx, ny);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in y.iter().zip(x.iter()) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn matches_naive_2d_dft() {
        let (nx, ny) = (4, 8);
        let x: Vec<c64> = (0..nx * ny)
            .map(|i| c64::new((i * i % 11) as f64 - 5.0, (i % 3) as f64))
            .collect();
        let mut y = x.clone();
        Fft2::new(nx, ny).forward(&mut y);
        for ky in 0..ny {
            for kx in 0..nx {
                let mut acc = c64::ZERO;
                for iy in 0..ny {
                    for ix in 0..nx {
                        let ang = -2.0
                            * core::f64::consts::PI
                            * ((kx * ix) as f64 / nx as f64 + (ky * iy) as f64 / ny as f64);
                        acc += x[iy * nx + ix] * c64::from_polar(1.0, ang);
                    }
                }
                assert!(
                    (y[ky * nx + kx] - acc).norm() < 1e-10,
                    "mismatch at ({kx},{ky})"
                );
            }
        }
    }

    #[test]
    fn separable_tone() {
        // A product of 1-D tones transforms to a single 2-D bin.
        let (nx, ny) = (16, 16);
        let (bx, by) = (3, 5);
        let x: Vec<c64> = (0..nx * ny)
            .map(|i| {
                let (ix, iy) = (i % nx, i / nx);
                c64::from_polar(
                    1.0,
                    2.0 * core::f64::consts::PI
                        * ((bx * ix) as f64 / nx as f64 + (by * iy) as f64 / ny as f64),
                )
            })
            .collect();
        let mut y = x;
        Fft2::new(nx, ny).forward(&mut y);
        for (i, v) in y.iter().enumerate() {
            let (kx, ky) = (i % nx, i / nx);
            if (kx, ky) == (bx, by) {
                assert!((v.norm() - (nx * ny) as f64).abs() < 1e-8);
            } else {
                assert!(v.norm() < 1e-8);
            }
        }
    }
}
