//! Fast matvec with 2-level (block) Toeplitz matrices via circulant
//! embedding.
//!
//! On an `m x m` uniform grid, a translation-invariant kernel produces
//! `A[i,j] = t(ix - jx, iy - jy)`. Embedding the `(2m-1)^2` offsets into a
//! `2m x 2m` circulant makes `A x` two 2-D FFTs and a pointwise multiply —
//! O(N log N) total. This is how the paper evaluates `||A x - b||` for
//! billion-row matrices without storing `A`.
//!
//! The symbol value at offset `(0,0)` is the matrix diagonal; callers that
//! need a non-translation-invariant diagonal (as both paper kernels do)
//! pass `t(0,0) = 0` and add the diagonal contribution separately.

use crate::fft2::Fft2;
use srsf_linalg::c64;

/// Fast multiplication by a 2-level Toeplitz matrix on an `m x m` grid.
#[derive(Clone, Debug)]
pub struct Toeplitz2D {
    m: usize,
    big: usize,
    plan: Fft2,
    /// FFT of the embedded circulant symbol.
    symbol_hat: Vec<c64>,
}

impl Toeplitz2D {
    /// Build from the offset symbol `t(dx, dy)`, `dx, dy in (-m, m)`.
    ///
    /// `m` must be a power of two (grid sizes in the experiments are).
    pub fn new(m: usize, symbol: impl Fn(i64, i64) -> c64) -> Self {
        assert!(m.is_power_of_two(), "grid side must be a power of two");
        let big = 2 * m;
        let mut c = vec![c64::ZERO; big * big];
        for dy in -(m as i64 - 1)..(m as i64) {
            let wy = dy.rem_euclid(big as i64) as usize;
            for dx in -(m as i64 - 1)..(m as i64) {
                let wx = dx.rem_euclid(big as i64) as usize;
                c[wy * big + wx] = symbol(dx, dy);
            }
        }
        let plan = Fft2::new(big, big);
        plan.forward(&mut c);
        Self {
            m,
            big,
            plan,
            symbol_hat: c,
        }
    }

    /// Grid side length `m` (the operator acts on vectors of length `m*m`).
    pub fn grid_side(&self) -> usize {
        self.m
    }

    /// Allocate a reusable scratch buffer for [`Toeplitz2D::apply_into`].
    ///
    /// One `2m x 2m` complex buffer — the single allocation every apply
    /// needs. Callers in a loop (the sketch accumulation applies the same
    /// operator once per sketch row) allocate it once and reuse it.
    pub fn scratch(&self) -> ToeplitzScratch {
        ToeplitzScratch {
            buf: vec![c64::ZERO; self.big * self.big],
        }
    }

    /// `y = A x` into a caller-provided output, reusing `scratch` —
    /// the allocation-free path behind [`Toeplitz2D::apply`].
    pub fn apply_into(&self, x: &[c64], y: &mut [c64], scratch: &mut ToeplitzScratch) {
        let m = self.m;
        assert_eq!(x.len(), m * m, "vector length must be m^2");
        assert_eq!(y.len(), m * m, "output length must be m^2");
        let buf = self.convolve(scratch, |buf, big| {
            for iy in 0..m {
                buf[iy * big..iy * big + m].copy_from_slice(&x[iy * m..(iy + 1) * m]);
            }
        });
        for iy in 0..m {
            y[iy * m..(iy + 1) * m].copy_from_slice(&buf[iy * self.big..iy * self.big + m]);
        }
    }

    /// `y = A x` for `x` of length `m*m` in row-major grid order.
    pub fn apply(&self, x: &[c64]) -> Vec<c64> {
        let mut y = vec![c64::ZERO; self.m * self.m];
        self.apply_into(x, &mut y, &mut self.scratch());
        y
    }

    /// Real-input apply into a caller-provided real output: packs `x`
    /// straight into the embedding buffer and extracts real parts straight
    /// out of it — no intermediate complex vectors.
    pub fn apply_real_into(&self, x: &[f64], y: &mut [f64], scratch: &mut ToeplitzScratch) {
        let m = self.m;
        assert_eq!(x.len(), m * m, "vector length must be m^2");
        assert_eq!(y.len(), m * m, "output length must be m^2");
        let buf = self.convolve(scratch, |buf, big| {
            for iy in 0..m {
                for ix in 0..m {
                    buf[iy * big + ix] = c64::new(x[iy * m + ix], 0.0);
                }
            }
        });
        for iy in 0..m {
            for ix in 0..m {
                y[iy * m + ix] = buf[iy * self.big + ix].re;
            }
        }
    }

    /// Real-symbol convenience: `y = A x` with real input/output.
    pub fn apply_real(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.m * self.m];
        self.apply_real_into(x, &mut y, &mut self.scratch());
        y
    }

    /// Shared circulant convolution: zero the embedding buffer, let the
    /// caller pack the top-left `m x m` corner, then FFT -> pointwise
    /// symbol multiply -> inverse FFT. Returns the buffer for extraction.
    fn convolve<'s>(
        &self,
        scratch: &'s mut ToeplitzScratch,
        pack: impl FnOnce(&mut [c64], usize),
    ) -> &'s [c64] {
        let big = self.big;
        assert_eq!(
            scratch.buf.len(),
            big * big,
            "scratch sized for a different operator"
        );
        scratch.buf.fill(c64::ZERO);
        pack(&mut scratch.buf, big);
        self.plan.forward(&mut scratch.buf);
        for (b, s) in scratch.buf.iter_mut().zip(self.symbol_hat.iter()) {
            *b *= *s;
        }
        self.plan.inverse(&mut scratch.buf);
        &scratch.buf
    }
}

/// Reusable workspace for [`Toeplitz2D::apply_into`] /
/// [`Toeplitz2D::apply_real_into`]; obtain from [`Toeplitz2D::scratch`].
#[derive(Clone, Debug)]
pub struct ToeplitzScratch {
    buf: Vec<c64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference: A[i,j] = t(offset).
    fn dense_apply(m: usize, t: &dyn Fn(i64, i64) -> c64, x: &[c64]) -> Vec<c64> {
        let n = m * m;
        let mut y = vec![c64::ZERO; n];
        for i in 0..n {
            let (ix, iy) = ((i % m) as i64, (i / m) as i64);
            for j in 0..n {
                let (jx, jy) = ((j % m) as i64, (j / m) as i64);
                y[i] += t(ix - jx, iy - jy) * x[j];
            }
        }
        y
    }

    #[test]
    fn matches_dense_complex_kernel() {
        let m = 8;
        let t = |dx: i64, dy: i64| {
            if dx == 0 && dy == 0 {
                c64::ZERO
            } else {
                let r = ((dx * dx + dy * dy) as f64).sqrt();
                c64::from_polar(1.0 / r, 0.7 * r)
            }
        };
        let x: Vec<c64> = (0..m * m)
            .map(|i| c64::new((i % 13) as f64 - 6.0, (i % 7) as f64))
            .collect();
        let fast = Toeplitz2D::new(m, t).apply(&x);
        let want = dense_apply(m, &t, &x);
        for (a, b) in fast.iter().zip(want.iter()) {
            assert!((*a - *b).norm() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn matches_dense_log_kernel() {
        // The Laplace symbol shape: -log r with zeroed diagonal.
        let m = 16;
        let h = 1.0 / m as f64;
        let t = move |dx: i64, dy: i64| {
            if dx == 0 && dy == 0 {
                c64::ZERO
            } else {
                let r = h * ((dx * dx + dy * dy) as f64).sqrt();
                c64::new(-r.ln(), 0.0)
            }
        };
        let x: Vec<f64> = (0..m * m)
            .map(|i| ((i * 31) % 17) as f64 / 17.0 - 0.5)
            .collect();
        let top = Toeplitz2D::new(m, t);
        let fast = top.apply_real(&x);
        let xc: Vec<c64> = x.iter().map(|&v| c64::new(v, 0.0)).collect();
        let want = dense_apply(m, &t, &xc);
        for (a, b) in fast.iter().zip(want.iter()) {
            assert!((a - b.re).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_symbol_is_identity() {
        let m = 4;
        let t = |dx: i64, dy: i64| {
            if dx == 0 && dy == 0 {
                c64::ONE
            } else {
                c64::ZERO
            }
        };
        let x: Vec<c64> = (0..16).map(|i| c64::new(i as f64, -(i as f64))).collect();
        let y = Toeplitz2D::new(m, t).apply(&x);
        for (a, b) in y.iter().zip(x.iter()) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn apply_into_reuses_scratch_and_matches_apply() {
        let m = 8;
        let t = |dx: i64, dy: i64| {
            if dx == 0 && dy == 0 {
                c64::ZERO
            } else {
                let r = ((dx * dx + dy * dy) as f64).sqrt();
                c64::new(1.0 / r, 0.3 / r)
            }
        };
        let top = Toeplitz2D::new(m, t);
        let mut scratch = top.scratch();
        let mut y = vec![c64::ZERO; m * m];
        for trial in 0..3 {
            // Same scratch across applies; a stale buffer would corrupt
            // later results.
            let x: Vec<c64> = (0..m * m)
                .map(|i| c64::new((i + trial) as f64, (i % 5) as f64 - 2.0))
                .collect();
            top.apply_into(&x, &mut y, &mut scratch);
            let want = top.apply(&x);
            for (a, b) in y.iter().zip(want.iter()) {
                assert!((*a - *b).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn apply_real_into_matches_complex_path() {
        let m = 16;
        let h = 1.0 / m as f64;
        let t = move |dx: i64, dy: i64| {
            if dx == 0 && dy == 0 {
                c64::ZERO
            } else {
                let r = h * ((dx * dx + dy * dy) as f64).sqrt();
                c64::new(-r.ln(), 0.0)
            }
        };
        let top = Toeplitz2D::new(m, t);
        let mut scratch = top.scratch();
        let x: Vec<f64> = (0..m * m).map(|i| ((i * 7) % 23) as f64 - 11.0).collect();
        let mut y = vec![0.0; m * m];
        top.apply_real_into(&x, &mut y, &mut scratch);
        let xc: Vec<c64> = x.iter().map(|&v| c64::new(v, 0.0)).collect();
        let want = top.apply(&xc);
        for (a, b) in y.iter().zip(want.iter()) {
            assert!((a - b.re).abs() < 1e-10);
        }
    }

    #[test]
    fn shift_symbol_translates() {
        // t = 1 at offset (1, 0): y[(ix,iy)] = x[(ix-1,iy)] for interior,
        // 0 at the ix = 0 boundary (Toeplitz, not circulant!).
        let m = 8;
        let t = |dx: i64, dy: i64| {
            if dx == 1 && dy == 0 {
                c64::ONE
            } else {
                c64::ZERO
            }
        };
        let x: Vec<c64> = (0..m * m).map(|i| c64::new(i as f64 + 1.0, 0.0)).collect();
        let y = Toeplitz2D::new(m, t).apply(&x);
        for iy in 0..m {
            for ix in 0..m {
                let got = y[iy * m + ix];
                let want = if ix == 0 {
                    c64::ZERO
                } else {
                    x[iy * m + ix - 1]
                };
                assert!((got - want).norm() < 1e-10, "at ({ix},{iy})");
            }
        }
    }
}
