//! Rank-0 exporters for gathered [`TraceReport`]s.
//!
//! * [`chrome_trace_json`] — Chrome trace-event JSON, loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`. One
//!   *process* per rank (a `process_name` metadata event is emitted for
//!   every report, spans or not), one *thread* row per recorded thread.
//! * [`profile_table`] — a plain-text profile: per-label wall-clock
//!   totals, then the per-rank compute vs comm-wait split with bytes
//!   moved — the shape of the paper's phase-timing tables.

use crate::{Cat, Span, TraceReport};

/// Escape a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond decimals, as trace-event `ts`/`dur`.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn cat_str(cat: u8) -> &'static str {
    Cat::from_u8(cat).map(Cat::as_str).unwrap_or("unknown")
}

/// Render gathered per-rank reports as Chrome trace-event JSON: pid =
/// rank, tid = recorder thread, complete (`"ph":"X"`) events with
/// microsecond timestamps, payload bytes in `args`.
pub fn chrome_trace_json(reports: &[TraceReport]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    for rep in reports {
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"rank {}\"}}}}",
                rep.rank, rep.rank
            ),
            &mut first,
        );
        for s in &rep.spans {
            push(
                format!(
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\
                     \"ts\":{},\"dur\":{},\"args\":{{\"bytes\":{}}}}}",
                    esc(&s.name),
                    cat_str(s.cat),
                    rep.rank,
                    s.tid,
                    us(s.start_ns),
                    us(s.dur_ns),
                    s.bytes
                ),
                &mut first,
            );
        }
    }
    out.push_str("]}");
    out
}

/// Per-label accumulator for the profile table.
struct Row {
    cat: u8,
    name: String,
    count: u64,
    total_ns: u64,
    bytes: u64,
}

/// Render gathered reports as a plain-text profile table: one row per
/// span label (aggregated over ranks and threads, sorted by total
/// wall-clock), then a per-rank summary splitting compute from
/// comm-wait time with the bytes that moved under the comm spans.
pub fn profile_table(reports: &[TraceReport]) -> String {
    let mut rows: Vec<Row> = Vec::new();
    for rep in reports {
        for s in &rep.spans {
            match rows.iter_mut().find(|r| r.cat == s.cat && r.name == s.name) {
                Some(r) => {
                    r.count += 1;
                    r.total_ns = r.total_ns.saturating_add(s.dur_ns);
                    r.bytes = r.bytes.saturating_add(s.bytes);
                }
                None => rows.push(Row {
                    cat: s.cat,
                    name: s.name.clone(),
                    count: 1,
                    total_ns: s.dur_ns,
                    bytes: s.bytes,
                }),
            }
        }
    }
    rows.sort_by_key(|r| std::cmp::Reverse(r.total_ns));

    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:>8} {:>7} {:>12} {:>12}\n",
        "span", "cat", "count", "total s", "bytes"
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:<44} {:>8} {:>7} {:>12.6} {:>12}\n",
            r.name,
            cat_str(r.cat),
            r.count,
            r.total_ns as f64 / 1e9,
            r.bytes
        ));
    }

    out.push_str(&format!(
        "\n{:<6} {:>12} {:>12} {:>14} {:>8}\n",
        "rank", "compute s", "comm-wait s", "bytes moved", "dropped"
    ));
    for rep in reports {
        let split = |want: Cat| -> u64 {
            rep.spans
                .iter()
                .filter(|s| s.cat == want as u8)
                .map(|s| s.dur_ns)
                .fold(0u64, u64::saturating_add)
        };
        let bytes: u64 = rep
            .spans
            .iter()
            .filter(|s| s.cat == Cat::Comm as u8)
            .map(|s| s.bytes)
            .fold(0u64, u64::saturating_add);
        out.push_str(&format!(
            "{:<6} {:>12.6} {:>12.6} {:>14} {:>8}\n",
            rep.rank,
            split(Cat::Compute) as f64 / 1e9,
            split(Cat::Comm) as f64 / 1e9,
            bytes,
            rep.dropped
        ));
    }
    out
}

/// Build a span literal for tests and fuzzing.
pub fn span_for_test(
    cat: Cat,
    name: &str,
    tid: u32,
    start_ns: u64,
    dur_ns: u64,
    bytes: u64,
) -> Span {
    Span {
        cat: cat as u8,
        name: name.to_string(),
        tid,
        start_ns,
        dur_ns,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceReport> {
        vec![
            TraceReport {
                rank: 0,
                dropped: 0,
                spans: vec![
                    span_for_test(Cat::Phase, "level 3 interior", 0, 100, 5_000_000, 0),
                    span_for_test(
                        Cat::Comm,
                        "recv \"PHASE_UPDATE\"",
                        0,
                        5_100_000,
                        2_000,
                        4096,
                    ),
                ],
            },
            TraceReport {
                rank: 1,
                dropped: 2,
                spans: vec![span_for_test(
                    Cat::Compute,
                    "eliminate c0",
                    1,
                    50,
                    3_000_000,
                    0,
                )],
            },
        ]
    }

    #[test]
    fn chrome_json_shape() {
        let json = chrome_trace_json(&sample());
        // One process_name metadata event per rank, escaped span names.
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"rank 1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("recv \\\"PHASE_UPDATE\\\""));
        assert!(json.contains("\"ts\":5100.000"));
        assert!(json.contains("\"bytes\":4096"));
        assert!(json.ends_with("]}"));
        // Empty reports still yield a process entry.
        let empty = chrome_trace_json(&[TraceReport {
            rank: 5,
            ..Default::default()
        }]);
        assert!(empty.contains("\"name\":\"rank 5\""));
    }

    #[test]
    fn profile_table_shape() {
        let text = profile_table(&sample());
        assert!(text.contains("level 3 interior"));
        assert!(text.contains("comm-wait s"));
        // Rank 0's comm bytes and rank 1's drop counter show up.
        assert!(text.contains("4096"));
        let rank1 = text.lines().last().expect("per-rank rows");
        assert!(rank1.trim_start().starts_with('1'));
        assert!(rank1.trim_end().ends_with('2'));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
