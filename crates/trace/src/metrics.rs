//! Serve-loop metrics: log-bucketed latency histograms, served/failed
//! counters, and per-rank resident-memory gauges.
//!
//! The registry is the *only* place metric counters mutate — an `xtask
//! lint` rule pins mutation of the counter fields to this file, the
//! same discipline the runtime applies to its §IV `CommStats` fields.
//! Everything a consumer sees is an immutable [`MetricsSnapshot`].
//!
//! [`Histogram`] is a fixed 64-bucket power-of-two layout (bucket `i`
//! holds values in `[2^(i-1), 2^i)` nanoseconds; bucket 0 holds zero):
//! constant memory, O(1) record, exact merge by element-wise addition —
//! so per-rank histograms can cross the wire and sum on rank 0 without
//! approximation beyond the bucketing itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Number of histogram buckets (one per power of two of `u64`).
pub const HIST_BUCKETS: usize = 64;

/// A fixed-allocation, mergeable latency histogram with power-of-two
/// nanosecond buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[i]` tallies values in `[2^(i-1), 2^i)`; `counts[0]`
    /// tallies exact zeros; the last bucket absorbs everything from
    /// `2^62` up.
    pub counts: [u64; HIST_BUCKETS],
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating), for the mean.
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// The empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in: 0 for 0, else
    /// `floor(log2(v)) + 1`, clamped to the last bucket.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` (the value reported for
    /// quantiles that resolve to it).
    pub fn bucket_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            _ if i >= HIST_BUCKETS - 1 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Fold another histogram in: element-wise (saturating) addition —
    /// exact, order-independent, the reduction per-rank histograms use
    /// on rank 0.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`
    /// (0 if empty). Resolution is the bucket width — a factor of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= target {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(HIST_BUCKETS - 1)
    }

    /// Mean of the recorded values (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Live metrics for one serving world, held behind the runtime's
/// `WorldHandle` and observed by the resident solve path. All interior
/// mutability — callers share it by `Arc`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    solves_served: AtomicU64,
    solves_failed: AtomicU64,
    latency: Mutex<Histogram>,
    resident_bytes: Mutex<Vec<u64>>,
}

impl MetricsRegistry {
    /// A fresh registry with zeroed counters and no gauges.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one solve: its wall-clock latency and whether it
    /// succeeded. Failed solves count but do not pollute the latency
    /// distribution (a timeout's latency is the timeout, not a signal).
    pub fn observe_solve(&self, latency_ns: u64, ok: bool) {
        if ok {
            self.solves_served.fetch_add(1, Ordering::Relaxed);
            self.latency
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .record(latency_ns);
        } else {
            self.solves_failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Set the per-rank resident factor-memory gauges (bytes).
    pub fn set_resident_bytes(&self, bytes_per_rank: &[usize]) {
        *self
            .resident_bytes
            .lock()
            .unwrap_or_else(PoisonError::into_inner) =
            bytes_per_rank.iter().map(|&b| b as u64).collect();
    }

    /// A consistent point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            solves_served: self.solves_served.load(Ordering::Relaxed),
            solves_failed: self.solves_failed.load(Ordering::Relaxed),
            latency: self
                .latency
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
            resident_bytes_per_rank: self
                .resident_bytes
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`] — plain data, safe to
/// hold across solves or print.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Solves that completed successfully.
    pub solves_served: u64,
    /// Solves that failed (rank failure, poisoned service).
    pub solves_failed: u64,
    /// Per-solve latency distribution (nanoseconds), successes only.
    pub latency: Histogram,
    /// Resident factor bytes held by each rank (gauge).
    pub resident_bytes_per_rank: Vec<u64>,
}

impl MetricsSnapshot {
    /// Render the snapshot as a small plain-text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "solves: {} served, {} failed\n",
            self.solves_served, self.solves_failed
        ));
        if self.latency.count > 0 {
            out.push_str(&format!(
                "latency: mean {:.3} ms, p50 <= {:.3} ms, p99 <= {:.3} ms\n",
                self.latency.mean() / 1e6,
                self.latency.quantile(0.5) as f64 / 1e6,
                self.latency.quantile(0.99) as f64 / 1e6,
            ));
        }
        if !self.resident_bytes_per_rank.is_empty() {
            out.push_str("resident factor bytes per rank:\n");
            for (r, b) in self.resident_bytes_per_rank.iter().enumerate() {
                out.push_str(&format!("  rank {r}: {b}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        // Powers of two open a new bucket; one less stays below.
        for i in 1..63usize {
            let p = 1u64 << i;
            assert_eq!(Histogram::bucket_of(p), (i + 1).min(HIST_BUCKETS - 1));
            assert_eq!(Histogram::bucket_of(p - 1), i);
        }
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Bounds are inclusive tops of their buckets.
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(1), 1);
        assert_eq!(Histogram::bucket_bound(10), 1023);
        assert_eq!(Histogram::bucket_bound(HIST_BUCKETS - 1), u64::MAX);
        // Every value is <= the bound of its own bucket.
        for v in [0u64, 1, 2, 3, 1000, 1 << 20, u64::MAX] {
            assert!(v <= Histogram::bucket_bound(Histogram::bucket_of(v)));
        }
    }

    #[test]
    fn merge_is_elementwise_and_exact() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 5, 1000, 1 << 30] {
            a.record(v);
        }
        for v in [0u64, 5, 7, 1 << 40] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, 8);
        assert_eq!(merged.sum, a.sum + b.sum);
        let mut both = Histogram::new();
        for v in [1u64, 5, 1000, 1 << 30, 0, 5, 7, 1 << 40] {
            both.record(v);
        }
        assert_eq!(merged, both);
        // Merge order does not matter.
        let mut other_way = b.clone();
        other_way.merge(&a);
        assert_eq!(merged, other_way);
    }

    #[test]
    fn quantiles_and_mean() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        for _ in 0..99 {
            h.record(100); // bucket 7, bound 127
        }
        h.record(1 << 20); // bucket 21
        assert_eq!(h.quantile(0.5), 127);
        assert_eq!(h.quantile(0.99), 127);
        assert_eq!(h.quantile(1.0), (1 << 21) - 1);
        assert!((h.mean() - (99.0 * 100.0 + (1u64 << 20) as f64) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn registry_snapshot() {
        let reg = MetricsRegistry::new();
        reg.observe_solve(1_000_000, true);
        reg.observe_solve(2_000_000, true);
        reg.observe_solve(500, false);
        reg.set_resident_bytes(&[10, 20, 30, 40]);
        let snap = reg.snapshot();
        assert_eq!(snap.solves_served, 2);
        assert_eq!(snap.solves_failed, 1);
        // Failures do not enter the latency distribution.
        assert_eq!(snap.latency.count, 2);
        assert_eq!(snap.resident_bytes_per_rank, vec![10, 20, 30, 40]);
        let text = snap.render();
        assert!(text.contains("2 served, 1 failed"));
        assert!(text.contains("rank 3: 40"));
    }
}
