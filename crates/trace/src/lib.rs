//! `srsf-trace`: a zero-dependency span/event recorder and metrics layer
//! for the SRSF runtime.
//!
//! The paper's scalability story is told in per-phase timings and
//! per-rank communication volume; this crate is the instrument that
//! measures them. It has three parts:
//!
//! * **Span recording** ([`span!`], [`SpanGuard`]): scoped wall-clock
//!   spans land in per-thread fixed-capacity ring buffers. The whole
//!   layer sits behind one process-global `AtomicBool`
//!   ([`set_enabled`]) — when tracing is off, [`span!`] is a single
//!   relaxed atomic load and the label closure is never evaluated, so
//!   instrumented hot paths cost one predictable branch. Spans are
//!   recorded only on threads that declared a rank via [`enter_rank`]
//!   (the runtime does this at every rank entry point), which is what
//!   keeps in-process multi-rank worlds separable: the collection side
//!   ([`take_report`]) drains by rank tag, not by thread.
//! * **Reports** ([`TraceReport`]): one rank's drained spans plus its
//!   drop counter. Reports cross the wire as `Wire` frames (the impl
//!   lives in `srsf-runtime`, which owns the `Wire` trait) and rank 0
//!   renders them with [`export::chrome_trace_json`] (Perfetto /
//!   `chrome://tracing`, one pid per rank, one tid per recorded thread)
//!   or [`export::profile_table`] (plain-text per-phase wall-clock with
//!   the compute vs comm-wait split and bytes moved).
//! * **Metrics** ([`metrics::MetricsRegistry`]): log-bucketed latency
//!   histograms (fixed allocation, mergeable, `Wire`-encodable),
//!   served/failed counters, and per-rank resident-memory gauges for
//!   the resident serve loop. Counter mutation is confined to
//!   `metrics.rs` by an `xtask lint` rule, mirroring the runtime's
//!   `CommStats` discipline.
//!
//! Timestamps are nanoseconds from a process-wide monotonic anchor
//! ([`now_ns`]): in-process ranks share one timeline; TCP ranks each
//! start near zero and render as separate Perfetto processes.
//!
//! Nothing here may perturb the quantities the paper analyzes: tracing
//! records locally and ships reports over *uncounted service frames*
//! (or inside rank-result frames), so solutions and the §IV per-rank
//! message/word counters are bit-identical with tracing on or off —
//! asserted by `srsf-core`'s `trace_identity` tests.

#![forbid(unsafe_code)]

pub mod export;
pub mod metrics;

pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Spans each recorded thread can hold before the ring wraps; wrapped
/// (overwritten) spans are tallied in [`TraceReport::dropped`] rather
/// than silently lost. Sized for a full factorization sweep: spans are
/// per phase/color round and per message wait, not per box.
pub const RING_CAP: usize = 8192;

/// Span category — the coarse row grouping of the profile table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Cat {
    /// A factorization level × phase × color sub-round.
    Phase = 0,
    /// Rank-local numerical work (skeletonization / elimination / merge).
    Compute = 1,
    /// A communication wait: send, receive, or barrier.
    Comm = 2,
    /// A resident solve sweep round.
    Solve = 3,
    /// Serve-envelope work (command dispatch, scatter/gather slabs).
    Serve = 4,
}

impl Cat {
    /// Round-trip a wire byte back to a category.
    pub fn from_u8(v: u8) -> Option<Cat> {
        match v {
            0 => Some(Cat::Phase),
            1 => Some(Cat::Compute),
            2 => Some(Cat::Comm),
            3 => Some(Cat::Solve),
            4 => Some(Cat::Serve),
            _ => None,
        }
    }

    /// Stable lower-case label used by the exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Cat::Phase => "phase",
            Cat::Compute => "compute",
            Cat::Comm => "comm",
            Cat::Solve => "solve",
            Cat::Serve => "serve",
        }
    }
}

/// One closed span: what happened, on which thread, when, for how long,
/// and how many payload bytes moved under it (zero for non-comm spans).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Category byte (a [`Cat`] value; kept raw so decoding is total).
    pub cat: u8,
    /// Human-readable label (phase name, `tags::describe` string, …).
    pub name: String,
    /// Recorder-thread id, unique per thread within the process.
    pub tid: u32,
    /// Start, nanoseconds from the process anchor ([`now_ns`]).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Payload bytes attributed to the span (comm spans only).
    pub bytes: u64,
}

/// One rank's drained trace: every span its threads recorded since the
/// last drain, in start-time order, plus the ring-overflow counter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// The rank whose threads recorded these spans.
    pub rank: u32,
    /// Spans overwritten by ring wrap-around before this drain.
    pub dropped: u64,
    /// The surviving spans, sorted by `(start_ns, tid)`.
    pub spans: Vec<Span>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn span recording on or off, process-wide. The runtime calls this
/// at rank entry with the driver's `trace` option — storing `false`
/// explicitly, so an untraced run self-cleans after a traced one.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Is span recording on? The one branch [`span!`] pays when disabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn anchor() -> &'static Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide monotonic anchor (which is pinned
/// at first use).
pub fn now_ns() -> u64 {
    anchor().elapsed().as_nanos() as u64
}

const NO_RANK: u32 = u32::MAX;

/// A fixed-capacity ring of spans: pushes past [`RING_CAP`] overwrite
/// the oldest entry and bump the drop counter.
struct Ring {
    spans: Vec<Span>,
    next: usize,
    dropped: u64,
}

impl Ring {
    fn new() -> Self {
        Ring {
            spans: Vec::new(),
            next: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, s: Span) {
        if self.spans.len() < RING_CAP {
            self.spans.push(s);
        } else {
            self.spans[self.next] = s;
            self.next = (self.next + 1) % RING_CAP;
            self.dropped += 1;
        }
    }

    fn drain(&mut self) -> (Vec<Span>, u64) {
        let dropped = self.dropped;
        let mut spans = std::mem::take(&mut self.spans);
        // Rotate so the oldest surviving span comes first after a wrap.
        spans.rotate_left(self.next);
        self.next = 0;
        self.dropped = 0;
        (spans, dropped)
    }
}

/// One recorded thread's slot in the global registry: its ring, its
/// process-unique tid, and the rank its spans currently belong to.
struct Slot {
    rank: AtomicU32,
    tid: u32,
    ring: Mutex<Ring>,
}

fn registry() -> &'static Mutex<Vec<Arc<Slot>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Slot>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static SLOT: RefCell<Option<Arc<Slot>>> = const { RefCell::new(None) };
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

/// Declare that the current thread executes rank `rank` from here on:
/// registers the thread's ring buffer (first call) and tags it, so its
/// spans land in `rank`'s [`take_report`]. Threads that never call this
/// record nothing. The runtime calls it at every rank entry point —
/// in-process rank threads, TCP worker processes, resident serve
/// threads — so instrumented library code never has to.
pub fn enter_rank(rank: usize) {
    SLOT.with(|s| {
        let mut s = s.borrow_mut();
        let slot = s.get_or_insert_with(|| {
            let slot = Arc::new(Slot {
                rank: AtomicU32::new(NO_RANK),
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                ring: Mutex::new(Ring::new()),
            });
            registry()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(slot.clone());
            slot
        });
        slot.rank.store(rank as u32, Ordering::Release);
    });
}

/// Does the current thread have a rank tag (i.e. would a span record)?
fn has_rank() -> bool {
    SLOT.with(|s| {
        s.borrow()
            .as_ref()
            .is_some_and(|slot| slot.rank.load(Ordering::Acquire) != NO_RANK)
    })
}

fn record(cat: u8, name: String, start_ns: u64, dur_ns: u64, bytes: u64) {
    SLOT.with(|s| {
        if let Some(slot) = s.borrow().as_ref() {
            if slot.rank.load(Ordering::Acquire) == NO_RANK {
                return;
            }
            slot.ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Span {
                    cat,
                    name,
                    tid: slot.tid,
                    start_ns,
                    dur_ns,
                    bytes,
                });
        }
    });
}

/// Drain every span recorded under `rank` across all of the process's
/// registered threads into one [`TraceReport`], resetting the rings.
/// Slots whose threads have exited and whose rings are drained are
/// unregistered on the way.
pub fn take_report(rank: usize) -> TraceReport {
    let mut spans = Vec::new();
    let mut dropped = 0u64;
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    for slot in reg.iter() {
        if slot.rank.load(Ordering::Acquire) == rank as u32 {
            let (s, d) = slot
                .ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .drain();
            spans.extend(s);
            dropped += d;
        }
    }
    // A strong count of 1 means the owning thread's TLS handle is gone:
    // the thread exited, nothing will record there again.
    reg.retain(|slot| Arc::strong_count(slot) > 1);
    drop(reg);
    spans.sort_by_key(|s| (s.start_ns, s.tid));
    TraceReport {
        rank: rank as u32,
        dropped,
        spans,
    }
}

/// A scoped span: created by [`span!`], records itself into the current
/// thread's ring when dropped. Inert (and near-free) when tracing is
/// disabled or the thread has no rank tag.
pub struct SpanGuard {
    /// `(category, label, start_ns)` — `None` for the inert guard.
    active: Option<(u8, String, u64)>,
    bytes: u64,
}

impl SpanGuard {
    /// Open a span now; `name` is evaluated only on this live path.
    pub fn begin(cat: Cat, name: impl FnOnce() -> String) -> SpanGuard {
        if has_rank() {
            SpanGuard {
                active: Some((cat as u8, name(), now_ns())),
                bytes: 0,
            }
        } else {
            SpanGuard::disabled()
        }
    }

    /// The inert guard — what [`span!`] yields when tracing is off.
    pub fn disabled() -> SpanGuard {
        SpanGuard {
            active: None,
            bytes: 0,
        }
    }

    /// Attribute `n` payload bytes to this span (comm spans).
    pub fn add_bytes(&mut self, n: u64) {
        self.bytes += n;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((cat, name, start)) = self.active.take() {
            let dur = now_ns().saturating_sub(start);
            record(cat, name, start, dur, self.bytes);
        }
    }
}

/// Open a scoped span: `let _g = span!(Cat::Phase, "level {l} interior");`.
///
/// Compiles to a branch on the process-global enable flag: when tracing
/// is disabled the format arguments are never evaluated and the inert
/// guard costs nothing on drop. The span closes (and is recorded) when
/// the guard goes out of scope; bind it to a named `_g`, not `_`, or it
/// drops immediately.
#[macro_export]
macro_rules! span {
    ($cat:expr, $($fmt:tt)+) => {
        if $crate::is_enabled() {
            $crate::SpanGuard::begin($cat, || ::std::format!($($fmt)+))
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test body: the enable flag and registry are process-global,
    /// so the scenarios run sequentially.
    #[test]
    fn recorder_end_to_end() {
        // Disabled: nothing records, even with a rank tag.
        enter_rank(7);
        set_enabled(false);
        {
            let _g = span!(Cat::Phase, "should not appear");
        }
        assert!(take_report(7).spans.is_empty());

        // Enabled: spans land under the thread's rank, in time order.
        set_enabled(true);
        {
            let _g = span!(Cat::Phase, "outer {}", 1);
            let mut inner = span!(Cat::Comm, "recv x");
            inner.add_bytes(128);
        }
        let rep = take_report(7);
        assert_eq!(rep.rank, 7);
        assert_eq!(rep.dropped, 0);
        assert_eq!(rep.spans.len(), 2);
        assert_eq!(rep.spans[0].name, "outer 1");
        let comm = rep
            .spans
            .iter()
            .find(|s| s.cat == Cat::Comm as u8)
            .expect("comm span recorded");
        assert_eq!(comm.bytes, 128);
        assert_eq!(comm.name, "recv x");
        // Drained: a second take is empty.
        assert!(take_report(7).spans.is_empty());

        // A thread without a rank tag records nothing.
        set_enabled(true);
        let handle = std::thread::spawn(|| {
            let _g = span!(Cat::Phase, "untagged");
        });
        handle.join().expect("helper thread");
        assert!(take_report(7).spans.is_empty());

        // Ring wrap-around: pushes past capacity count as dropped and
        // the survivors come back oldest-first.
        enter_rank(3);
        for i in 0..(RING_CAP + 10) {
            record(Cat::Phase as u8, format!("s{i}"), i as u64, 1, 0);
        }
        let rep = take_report(3);
        assert_eq!(rep.dropped, 10);
        assert_eq!(rep.spans.len(), RING_CAP);
        assert_eq!(rep.spans[0].name, "s10");
        let last = format!("s{}", RING_CAP + 9);
        assert_eq!(rep.spans.last().map(|s| s.name.as_str()), Some(&last[..]));

        set_enabled(false);
    }

    #[test]
    fn cat_round_trips() {
        for cat in [Cat::Phase, Cat::Compute, Cat::Comm, Cat::Solve, Cat::Serve] {
            assert_eq!(Cat::from_u8(cat as u8), Some(cat));
        }
        assert_eq!(Cat::from_u8(5), None);
    }
}
