//! `srsf-geometry`: planar geometry for the hierarchical solver.
//!
//! * [`point`] — 2-D points and bounding boxes.
//! * [`grid`] — the `sqrt(N) x sqrt(N)` uniform collocation grid of the
//!   paper's experiments (Section V), plus non-uniform generators for tests.
//! * [`tree`] — the perfect quad-tree of Section II-A with integer box
//!   coordinates per level.
//! * [`neighbors`] — near field `N(B)`, distance-2 ring `M(B)` (Definition
//!   2), and Chebyshev box distance.
//! * [`proxy`] — proxy-circle discretizations (radius `2.5 L`, Section II-C).
//! * [`procgrid`] — the process grid: block partition of boxes onto ranks,
//!   interior/boundary classification, and the 4-coloring of Figure 5 (plus
//!   a distance-3 9-coloring used by the lock-free shared-memory ablation).

#![forbid(unsafe_code)]

pub mod grid;
pub mod neighbors;
pub mod point;
pub mod procgrid;
pub mod proxy;
pub mod tree;

pub use grid::UnitGrid;
pub use point::Point;
pub use procgrid::ProcessGrid;
pub use tree::{BoxId, QuadTree};
