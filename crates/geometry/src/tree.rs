//! The perfect quad-tree of Section II-A.
//!
//! The domain square is subdivided `L` times; level `l` holds `2^l x 2^l`
//! boxes identified by integer coordinates `(ix, iy)`. Points are bucketed
//! into leaves by coordinates. The paper assumes a uniform distribution and
//! a perfect tree (Section II-A, "extensions to a non-uniform distribution
//! are straightforward but quite tedious"); we follow it, and the tree
//! accepts any point cloud but keeps the perfect structure (empty leaves
//! are legal and simply own no unknowns).

use crate::point::{BBox, Point};

/// Identifier of a box: its level and integer grid coordinates within the
/// level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoxId {
    /// Tree level; 0 is the root.
    pub level: u8,
    /// Horizontal box coordinate in `0..2^level`.
    pub ix: u32,
    /// Vertical box coordinate in `0..2^level`.
    pub iy: u32,
}

impl BoxId {
    /// The root box.
    pub const ROOT: BoxId = BoxId {
        level: 0,
        ix: 0,
        iy: 0,
    };

    /// Boxes per side at this box's level.
    #[inline]
    pub fn side_count(&self) -> u32 {
        1 << self.level
    }

    /// Flat index within the level (`iy * 2^level + ix`).
    #[inline]
    pub fn flat(&self) -> usize {
        (self.iy as usize) << self.level | self.ix as usize
    }

    /// Parent box (`None` for the root).
    pub fn parent(&self) -> Option<BoxId> {
        if self.level == 0 {
            None
        } else {
            Some(BoxId {
                level: self.level - 1,
                ix: self.ix / 2,
                iy: self.iy / 2,
            })
        }
    }

    /// The four children (at `level + 1`).
    pub fn children(&self) -> [BoxId; 4] {
        let l = self.level + 1;
        let (x, y) = (self.ix * 2, self.iy * 2);
        [
            BoxId {
                level: l,
                ix: x,
                iy: y,
            },
            BoxId {
                level: l,
                ix: x + 1,
                iy: y,
            },
            BoxId {
                level: l,
                ix: x,
                iy: y + 1,
            },
            BoxId {
                level: l,
                ix: x + 1,
                iy: y + 1,
            },
        ]
    }

    /// Chebyshev distance to another box at the **same level** — the box
    /// distance `d` of Section III (`d = 1`: neighbors, `d = 2`: distance-2
    /// neighbors, `d > 2`: independent).
    pub fn chebyshev(&self, other: &BoxId) -> u32 {
        assert_eq!(self.level, other.level, "box distance needs equal levels");
        let dx = self.ix.abs_diff(other.ix);
        let dy = self.iy.abs_diff(other.iy);
        dx.max(dy)
    }
}

/// A perfect quad-tree over a square domain.
#[derive(Clone, Debug)]
pub struct QuadTree {
    domain: BBox,
    levels: u8,
    /// Point indices per leaf box, indexed by the leaf's flat index.
    leaf_points: Vec<Vec<u32>>,
    n_points: usize,
}

impl QuadTree {
    /// Build a tree over `points` inside `domain` with `levels`
    /// subdivisions (leaves at level `levels`).
    pub fn with_levels(points: &[Point], domain: BBox, levels: u8) -> Self {
        let s = 1usize << levels;
        let mut leaf_points = vec![Vec::new(); s * s];
        let inv = s as f64 / domain.side;
        for (idx, p) in points.iter().enumerate() {
            debug_assert!(domain.contains(p), "point {p:?} outside domain");
            let ix = (((p.x - domain.lo.x) * inv) as usize).min(s - 1);
            let iy = (((p.y - domain.lo.y) * inv) as usize).min(s - 1);
            leaf_points[iy * s + ix].push(idx as u32);
        }
        Self {
            domain,
            levels,
            leaf_points,
            n_points: points.len(),
        }
    }

    /// Build with the depth chosen so the *average* leaf population is at
    /// most `leaf_size` (matching the paper's "O(1) points per box" rule;
    /// for the uniform grid the average is exact).
    pub fn build(points: &[Point], domain: BBox, leaf_size: usize) -> Self {
        assert!(leaf_size >= 1);
        let mut levels = 0u8;
        while points.len() > leaf_size * (1usize << (2 * levels)) && levels < 24 {
            levels += 1;
        }
        Self::with_levels(points, domain, levels)
    }

    /// Number of levels below the root (leaves live at this level).
    pub fn leaf_level(&self) -> u8 {
        self.levels
    }

    /// Total number of points.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// Domain box.
    pub fn domain(&self) -> BBox {
        self.domain
    }

    /// Geometric box of `id`.
    pub fn bbox(&self, id: &BoxId) -> BBox {
        let side = self.domain.side / id.side_count() as f64;
        BBox {
            lo: Point::new(
                self.domain.lo.x + id.ix as f64 * side,
                self.domain.lo.y + id.iy as f64 * side,
            ),
            side,
        }
    }

    /// Side length of boxes at `level`.
    pub fn box_side(&self, level: u8) -> f64 {
        self.domain.side / (1u64 << level) as f64
    }

    /// Point indices owned by a **leaf** box.
    pub fn leaf_points(&self, id: &BoxId) -> &[u32] {
        assert_eq!(id.level, self.levels, "only leaves own points directly");
        &self.leaf_points[id.flat()]
    }

    /// Iterate all boxes of a level in row-major order.
    pub fn boxes_at_level(&self, level: u8) -> impl Iterator<Item = BoxId> + '_ {
        let s = 1u32 << level;
        (0..s).flat_map(move |iy| (0..s).map(move |ix| BoxId { level, ix, iy }))
    }

    /// Number of boxes at a level.
    pub fn n_boxes(&self, level: u8) -> usize {
        1usize << (2 * level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{scattered_points, UnitGrid};

    #[test]
    fn box_id_relations() {
        let b = BoxId {
            level: 3,
            ix: 5,
            iy: 2,
        };
        assert_eq!(b.side_count(), 8);
        assert_eq!(b.flat(), 2 * 8 + 5);
        let p = b.parent().unwrap();
        assert_eq!(
            p,
            BoxId {
                level: 2,
                ix: 2,
                iy: 1
            }
        );
        assert!(p.children().contains(&b));
        assert_eq!(BoxId::ROOT.parent(), None);
        // children-parent round trip for all children
        for c in b.children() {
            assert_eq!(c.parent().unwrap(), b);
        }
    }

    #[test]
    fn chebyshev_distance() {
        let a = BoxId {
            level: 4,
            ix: 3,
            iy: 3,
        };
        assert_eq!(a.chebyshev(&a), 0);
        assert_eq!(
            a.chebyshev(&BoxId {
                level: 4,
                ix: 4,
                iy: 4
            }),
            1
        );
        assert_eq!(
            a.chebyshev(&BoxId {
                level: 4,
                ix: 5,
                iy: 3
            }),
            2
        );
        assert_eq!(
            a.chebyshev(&BoxId {
                level: 4,
                ix: 0,
                iy: 10
            }),
            7
        );
    }

    #[test]
    fn every_point_in_exactly_one_leaf() {
        let pts = scattered_points(500, 9);
        let tree = QuadTree::build(&pts, BBox::UNIT, 16);
        let mut seen = vec![false; pts.len()];
        for id in tree.boxes_at_level(tree.leaf_level()) {
            let bb = tree.bbox(&id);
            for &pi in tree.leaf_points(&id) {
                assert!(!seen[pi as usize], "point {pi} in two leaves");
                seen[pi as usize] = true;
                assert!(bb.contains(&pts[pi as usize]), "point outside its leaf");
            }
        }
        assert!(seen.iter().all(|&s| s), "some point not assigned");
    }

    #[test]
    fn uniform_grid_gives_perfectly_balanced_leaves() {
        let g = UnitGrid::new(16); // 256 points
        let tree = QuadTree::build(&g.points(), g.bbox(), 16);
        assert_eq!(tree.leaf_level(), 2); // 16 leaves * 16 points
        for id in tree.boxes_at_level(2) {
            assert_eq!(tree.leaf_points(&id).len(), 16);
        }
    }

    #[test]
    fn depth_selection_respects_leaf_size() {
        let pts = scattered_points(1000, 3);
        let tree = QuadTree::build(&pts, BBox::UNIT, 64);
        // average leaf population <= 64
        let leaves = tree.n_boxes(tree.leaf_level());
        assert!(pts.len() <= 64 * leaves);
        // and one level up would overflow
        if tree.leaf_level() > 0 {
            assert!(pts.len() > 64 * tree.n_boxes(tree.leaf_level() - 1));
        }
    }

    #[test]
    fn bbox_geometry_nested() {
        let tree = QuadTree::with_levels(&[Point::new(0.5, 0.5)], BBox::UNIT, 3);
        let b = BoxId {
            level: 3,
            ix: 7,
            iy: 0,
        };
        let bb = tree.bbox(&b);
        assert!((bb.side - 0.125).abs() < 1e-15);
        assert!((bb.lo.x - 0.875).abs() < 1e-15);
        // child boxes tile the parent
        let parent = BoxId {
            level: 2,
            ix: 3,
            iy: 0,
        };
        let pb = tree.bbox(&parent);
        for c in parent.children() {
            let cb = tree.bbox(&c);
            assert!(cb.lo.x >= pb.lo.x - 1e-15 && cb.lo.x + cb.side <= pb.lo.x + pb.side + 1e-12);
        }
        assert_eq!(tree.box_side(3), 0.125);
    }

    #[test]
    fn boxes_at_level_count_and_order() {
        let tree = QuadTree::with_levels(&[Point::new(0.1, 0.1)], BBox::UNIT, 2);
        let ids: Vec<BoxId> = tree.boxes_at_level(2).collect();
        assert_eq!(ids.len(), 16);
        assert_eq!(tree.n_boxes(2), 16);
        // row-major: flat index equals position
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.flat(), i);
        }
    }
}
