//! Process grids: the distributed decomposition of Section III.
//!
//! Leaf boxes are block-partitioned onto a `q x q` grid of ranks
//! (`p = q^2`, Figure 4). Boxes whose neighbors all live on the same rank
//! are *interior* (factored with zero communication); the rest are
//! *boundary* and are processed in four process-color rounds (Figure 5).
//! As the tree coarsens and a rank's block would drop below `2 x 2` boxes,
//! the grid folds by two per axis and only the "corner" rank of each `2x2`
//! rank group stays active — the paper's "the number of processes involved
//! in the new level may also decrease".

use crate::tree::BoxId;

/// A `q x q` grid of ranks (`q` a power of two).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessGrid {
    q: u32,
}

impl ProcessGrid {
    /// Build a grid with `p = q^2` ranks from the total rank count `p`
    /// (must be `4^k`: 1, 4, 16, 64, …).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a power of four; use [`ProcessGrid::try_new`]
    /// for fallible construction.
    pub fn new(p: usize) -> Self {
        Self::try_new(p).unwrap_or_else(|| {
            // INVARIANT: deliberate — documented panicking constructor; try_new is
            // the fallible path
            panic!("process count must be a power of four (1, 4, 16, ...), got {p}")
        })
    }

    /// Build a grid with `p = q^2` ranks, or `None` if `p` is not a
    /// power of four.
    pub fn try_new(p: usize) -> Option<Self> {
        let q = (p as f64).sqrt().round() as u32;
        if (q * q) as usize != p || !(q.is_power_of_two() || q == 1) {
            return None;
        }
        Some(Self { q })
    }

    /// Ranks per side.
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Total ranks.
    pub fn p(&self) -> usize {
        (self.q * self.q) as usize
    }

    /// Rank id from grid coordinates.
    pub fn rank_of(&self, px: u32, py: u32) -> usize {
        (py * self.q + px) as usize
    }

    /// Grid coordinates of a rank id.
    pub fn coords_of(&self, rank: usize) -> (u32, u32) {
        let r = rank as u32;
        (r % self.q, r / self.q)
    }

    /// Effective grid side at a tree level: the largest `q_eff <= q` such
    /// that every active rank holds at least a `2 x 2` block of boxes
    /// (needed for the same-color-independence guarantee of Section III-B).
    pub fn effective_q(&self, level: u8) -> u32 {
        if level <= 1 {
            return 1;
        }
        let max_q = 1u32 << (level - 1); // 2^(level-1)
        self.q.min(max_q)
    }

    /// `true` if `rank` participates at `level` (after folding).
    pub fn is_active(&self, rank: usize, level: u8) -> bool {
        let qe = self.effective_q(level);
        let stride = self.q / qe;
        let (px, py) = self.coords_of(rank);
        px % stride == 0 && py % stride == 0
    }

    /// Active ranks at a level, in row-major effective order.
    pub fn active_ranks(&self, level: u8) -> Vec<usize> {
        let qe = self.effective_q(level);
        let stride = self.q / qe;
        let mut out = Vec::with_capacity((qe * qe) as usize);
        for ey in 0..qe {
            for ex in 0..qe {
                out.push(self.rank_of(ex * stride, ey * stride));
            }
        }
        out
    }

    /// Owning rank of a box at its level.
    ///
    /// Requires `2^level >= effective_q`, which `effective_q` guarantees.
    pub fn owner(&self, b: &BoxId) -> usize {
        let qe = self.effective_q(b.level);
        let s = b.side_count();
        let block = s / qe;
        let (ex, ey) = (b.ix / block, b.iy / block);
        let stride = self.q / qe;
        self.rank_of(ex * stride, ey * stride)
    }

    /// Effective grid coordinates of a rank at a level.
    pub fn effective_coords(&self, rank: usize, level: u8) -> (u32, u32) {
        let qe = self.effective_q(level);
        let stride = self.q / qe;
        let (px, py) = self.coords_of(rank);
        debug_assert!(px % stride == 0 && py % stride == 0);
        (px / stride, py / stride)
    }

    /// The 4-coloring of active ranks at a level (Figure 5): adjacent ranks
    /// always differ.
    pub fn color(&self, rank: usize, level: u8) -> u8 {
        let (ex, ey) = self.effective_coords(rank, level);
        ((ex % 2) + 2 * (ey % 2)) as u8
    }

    /// Active ranks adjacent (Chebyshev distance 1 on the effective grid)
    /// to `rank` at `level`. At most 8.
    pub fn neighbor_ranks(&self, rank: usize, level: u8) -> Vec<usize> {
        let qe = self.effective_q(level);
        let stride = self.q / qe;
        let (ex, ey) = self.effective_coords(rank, level);
        let mut out = Vec::new();
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = ex as i64 + dx;
                let ny = ey as i64 + dy;
                if nx >= 0 && ny >= 0 && (nx as u32) < qe && (ny as u32) < qe {
                    out.push(self.rank_of(nx as u32 * stride, ny as u32 * stride));
                }
            }
        }
        out
    }

    /// `true` if the box's 1-ring crosses a rank boundary (a *boundary*
    /// box); interior boxes factor without communication.
    pub fn is_boundary(&self, b: &BoxId) -> bool {
        let me = self.owner(b);
        crate::neighbors::near_field(b)
            .iter()
            .any(|n| self.owner(n) != me)
    }

    /// All boxes of a level owned by `rank`, split into (interior, boundary),
    /// each in row-major order.
    pub fn classify_level(&self, rank: usize, level: u8) -> (Vec<BoxId>, Vec<BoxId>) {
        let mut interior = Vec::new();
        let mut boundary = Vec::new();
        let s = 1u32 << level;
        for iy in 0..s {
            for ix in 0..s {
                let b = BoxId { level, ix, iy };
                if self.owner(&b) == rank {
                    if self.is_boundary(&b) {
                        boundary.push(b);
                    } else {
                        interior.push(b);
                    }
                }
            }
        }
        (interior, boundary)
    }
}

/// Coloring schemes for *boxes* (the shared-memory reference of Section
/// V-C colors boxes, not ranks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoxColoring {
    /// 4 colors; adjacent boxes differ (the paper's reference scheme).
    /// Same-color boxes can be at distance 2, so concurrent Schur updates
    /// to shared neighbor pairs must be merged additively.
    Four,
    /// 9 colors; same-color boxes are at distance >= 3, making all writes
    /// disjoint (lock-free ablation variant).
    Nine,
}

impl BoxColoring {
    /// Number of colors.
    pub fn count(&self) -> u8 {
        match self {
            BoxColoring::Four => 4,
            BoxColoring::Nine => 9,
        }
    }

    /// Color of a box.
    pub fn color(&self, b: &BoxId) -> u8 {
        match self {
            BoxColoring::Four => ((b.ix % 2) + 2 * (b.iy % 2)) as u8,
            BoxColoring::Nine => ((b.ix % 3) + 3 * (b.iy % 3)) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbors::near_field;

    #[test]
    fn grid_construction_and_coords() {
        let g = ProcessGrid::new(16);
        assert_eq!(g.q(), 4);
        assert_eq!(g.p(), 16);
        assert_eq!(g.rank_of(1, 2), 9);
        assert_eq!(g.coords_of(9), (1, 2));
        let g1 = ProcessGrid::new(1);
        assert_eq!(g1.q(), 1);
    }

    #[test]
    #[should_panic]
    fn non_square_rejected() {
        let _ = ProcessGrid::new(8);
    }

    #[test]
    fn owner_partition_is_balanced_blocks() {
        let g = ProcessGrid::new(4);
        let level = 4u8; // 16x16 boxes, 8x8 per rank
        let mut counts = vec![0usize; 4];
        let s = 1u32 << level;
        for iy in 0..s {
            for ix in 0..s {
                counts[g.owner(&BoxId { level, ix, iy })] += 1;
            }
        }
        assert_eq!(counts, vec![64; 4]);
    }

    #[test]
    fn effective_q_folds_at_coarse_levels() {
        let g = ProcessGrid::new(16); // q = 4
        assert_eq!(g.effective_q(5), 4); // 32x32 boxes: full grid
        assert_eq!(g.effective_q(3), 4); // 8x8 boxes: 2x2 per rank, still OK
        assert_eq!(g.effective_q(2), 2); // 4x4 boxes: fold to 2x2 ranks
        assert_eq!(g.effective_q(1), 1);
        assert_eq!(g.effective_q(0), 1);
        // every rank holds >= 2x2 boxes at any level where it is active
        for level in 2..=6u8 {
            let qe = g.effective_q(level);
            assert!((1u32 << level) / qe >= 2);
        }
    }

    #[test]
    fn active_ranks_and_folding() {
        let g = ProcessGrid::new(16);
        assert_eq!(g.active_ranks(5).len(), 16);
        let l2 = g.active_ranks(2);
        assert_eq!(l2.len(), 4);
        // corner ranks of the 2x2 fold groups: coords (0,0),(2,0),(0,2),(2,2)
        assert_eq!(l2, vec![0, 2, 8, 10]);
        for &r in &l2 {
            assert!(g.is_active(r, 2));
        }
        assert!(!g.is_active(1, 2));
        assert_eq!(g.active_ranks(0), vec![0]);
    }

    #[test]
    fn rank_coloring_makes_adjacent_ranks_differ() {
        let g = ProcessGrid::new(16);
        let level = 5;
        for &r in &g.active_ranks(level) {
            let c = g.color(r, level);
            assert!(c < 4);
            for nr in g.neighbor_ranks(r, level) {
                assert_ne!(c, g.color(nr, level), "ranks {r} and {nr} share color");
            }
        }
    }

    #[test]
    fn interior_boxes_of_distinct_ranks_are_independent() {
        let g = ProcessGrid::new(4);
        let level = 4u8;
        let (int0, _) = g.classify_level(0, level);
        let (int1, _) = g.classify_level(1, level);
        assert!(!int0.is_empty() && !int1.is_empty());
        for a in &int0 {
            for b in &int1 {
                assert!(a.chebyshev(b) > 2, "{a:?} vs {b:?} too close");
            }
        }
    }

    #[test]
    fn same_color_boundary_boxes_are_independent() {
        let g = ProcessGrid::new(16);
        let level = 5u8; // 32x32 boxes, 8x8 per rank
        let ranks = g.active_ranks(level);
        for &r1 in &ranks {
            for &r2 in &ranks {
                if r1 >= r2 || g.color(r1, level) != g.color(r2, level) {
                    continue;
                }
                let (_, b1) = g.classify_level(r1, level);
                let (_, b2) = g.classify_level(r2, level);
                for a in &b1 {
                    for b in &b2 {
                        assert!(a.chebyshev(b) > 2, "{a:?} vs {b:?} same color too close");
                    }
                }
            }
        }
    }

    #[test]
    fn boundary_classification_matches_figure4() {
        // 4 ranks, level 2 (4x4 boxes, 2x2 per rank): only the domain-corner
        // box of each rank block has all its neighbors on the same rank.
        let g = ProcessGrid::new(4);
        let (int, bnd) = g.classify_level(0, 2);
        assert_eq!(
            int,
            vec![BoxId {
                level: 2,
                ix: 0,
                iy: 0
            }]
        );
        assert_eq!(bnd.len(), 3);
        // level 4 (16x16, 8x8 per rank): interior = 8x8 - boundary ring
        // along the two shared edges (an L-shape of width 2... count directly)
        let (int4, bnd4) = g.classify_level(0, 4);
        assert_eq!(int4.len() + bnd4.len(), 64);
        assert!(!int4.is_empty());
        for b in &int4 {
            for n in near_field(b) {
                assert_eq!(g.owner(&n), 0);
            }
        }
        for b in &bnd4 {
            assert!(near_field(b).iter().any(|n| g.owner(n) != 0));
        }
    }

    #[test]
    fn neighbor_ranks_at_most_8_and_symmetric() {
        let g = ProcessGrid::new(16);
        for level in [3u8, 5] {
            for &r in &g.active_ranks(level) {
                let ns = g.neighbor_ranks(r, level);
                assert!(ns.len() <= 8);
                for n in &ns {
                    assert!(g.neighbor_ranks(*n, level).contains(&r));
                }
            }
        }
    }

    #[test]
    fn box_colorings() {
        let four = BoxColoring::Four;
        let nine = BoxColoring::Nine;
        assert_eq!(four.count(), 4);
        assert_eq!(nine.count(), 9);
        // Four: neighbors differ.
        let b = BoxId {
            level: 4,
            ix: 5,
            iy: 9,
        };
        for n in near_field(&b) {
            assert_ne!(four.color(&b), four.color(&n));
        }
        // Nine: same color implies distance >= 3.
        let s = 9u32;
        for iy1 in 0..s {
            for ix1 in 0..s {
                let a = BoxId {
                    level: 4,
                    ix: ix1,
                    iy: iy1,
                };
                for iy2 in 0..s {
                    for ix2 in 0..s {
                        let c = BoxId {
                            level: 4,
                            ix: ix2,
                            iy: iy2,
                        };
                        if a != c && nine.color(&a) == nine.color(&c) {
                            assert!(a.chebyshev(&c) >= 3);
                        }
                    }
                }
            }
        }
    }
}
