//! Proxy circles (Section II-C of the paper).
//!
//! The far-field interaction of a box `B` is compressed against a small
//! ring of "proxy" points on a circle of radius `2.5 L` around the box
//! center (`L` = box side). The circle lies inside the distance-2 ring
//! `M(B)`, so together `[A_{M,B}; K_{proxy,B}]` captures all of `A_{F,B}`
//! up to the compression tolerance. The point count is `O(1)` for smooth
//! kernels and scales with `kappa * radius` for oscillatory ones (the
//! circle must resolve the kernel's wavelength).

use crate::point::Point;

/// Equispaced directions on the unit circle (radius 1 around the origin,
/// first point on the +x axis).
///
/// All boxes of a tree level share radius and point count, so the
/// factorization evaluates the trigonometry once per level and shifts the
/// result per box with [`proxy_circle_from_unit`] instead of rebuilding
/// the circle for every skeletonization.
pub fn unit_circle(n: usize) -> Vec<Point> {
    assert!(n >= 1);
    (0..n)
        .map(|k| {
            let ang = 2.0 * core::f64::consts::PI * k as f64 / n as f64;
            Point::new(ang.cos(), ang.sin())
        })
        .collect()
}

/// Scale a precomputed [`unit_circle`] by `radius` and translate it to
/// `center`.
pub fn proxy_circle_from_unit(center: Point, radius: f64, unit: &[Point]) -> Vec<Point> {
    assert!(radius > 0.0);
    unit.iter()
        .map(|u| Point::new(center.x + radius * u.x, center.y + radius * u.y))
        .collect()
}

/// Equispaced points on the circle of given `center` and `radius`.
pub fn proxy_circle(center: Point, radius: f64, n: usize) -> Vec<Point> {
    proxy_circle_from_unit(center, radius, &unit_circle(n))
}

/// Proxy point count rule: `max(n_min, ceil(osc_factor * kappa * radius) + 32)`.
///
/// For `kappa = 0` (Laplace) this is just `n_min`; for Helmholtz it keeps a
/// fixed number of points per wavelength along the circle.
pub fn proxy_count(n_min: usize, osc_factor: f64, kappa: f64, radius: f64) -> usize {
    let osc = (osc_factor * kappa * radius).ceil() as usize + 32;
    n_min.max(osc)
}

/// Check that a circle of `radius` around a box of side `L` stays strictly
/// inside the distance-2 ring: the ring's inner boundary is at distance
/// `1.5 L` from the center (edge of the neighbor layer) and its outer
/// boundary at `2.5 L` … `3.5 L` depending on direction; the paper's
/// `2.5 L` radius fits within the diagonal extent `2.5·sqrt(2) ≈ 3.54 L`
/// while staying outside the near field.
pub fn radius_is_admissible(radius_factor: f64) -> bool {
    radius_factor > 1.5 && radius_factor <= 2.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_points_on_circle() {
        let c = Point::new(0.3, -0.2);
        let pts = proxy_circle(c, 2.0, 17);
        assert_eq!(pts.len(), 17);
        for p in &pts {
            assert!((p.dist(&c) - 2.0).abs() < 1e-12);
        }
        // distinct points
        for i in 1..pts.len() {
            assert!(pts[i].dist(&pts[0]) > 1e-9);
        }
    }

    #[test]
    fn first_point_on_positive_x_axis() {
        let pts = proxy_circle(Point::new(0.0, 0.0), 1.5, 8);
        assert!((pts[0].x - 1.5).abs() < 1e-15);
        assert!(pts[0].y.abs() < 1e-15);
    }

    #[test]
    fn translated_unit_circle_matches_direct_circle() {
        let unit = unit_circle(23);
        let c = Point::new(-0.4, 1.7);
        let direct = proxy_circle(c, 3.25, 23);
        let shifted = proxy_circle_from_unit(c, 3.25, &unit);
        assert_eq!(direct.len(), shifted.len());
        for (a, b) in direct.iter().zip(shifted.iter()) {
            // Bitwise: the cached path must not perturb skeleton selection.
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
        }
    }

    #[test]
    fn count_rule() {
        // Laplace: kappa = 0 -> minimum.
        assert_eq!(proxy_count(64, 2.0, 0.0, 0.3), 64);
        // Oscillatory: grows linearly with kappa * radius.
        let n1 = proxy_count(64, 2.0, 100.0, 0.5);
        let n2 = proxy_count(64, 2.0, 200.0, 0.5);
        assert!(n1 >= 132);
        assert!(n2 >= 2 * n1 - 64 - 40);
    }

    #[test]
    fn paper_radius_admissible() {
        assert!(radius_is_admissible(2.5));
        assert!(radius_is_admissible(2.0));
        assert!(!radius_is_admissible(1.0)); // inside the near field
        assert!(!radius_is_admissible(3.0)); // pokes past M in axis directions
    }
}
