//! Point-set generators: the paper's uniform collocation grid plus
//! non-uniform clouds used by tests.

use crate::point::{BBox, Point};

/// The `m x m` uniform collocation grid on the unit square used throughout
/// Section V of the paper: cell centers `((ix + 1/2) h, (iy + 1/2) h)` with
/// `h = 1/m`, indexed row-major (`i = iy * m + ix`).
#[derive(Clone, Copy, Debug)]
pub struct UnitGrid {
    m: usize,
}

impl UnitGrid {
    /// Build an `m x m` grid (`N = m^2` unknowns).
    pub fn new(m: usize) -> Self {
        assert!(m >= 1);
        Self { m }
    }

    /// Points per side.
    pub fn side(&self) -> usize {
        self.m
    }

    /// Total number of points `N = m^2`.
    pub fn n(&self) -> usize {
        self.m * self.m
    }

    /// Grid spacing `h = 1/m`.
    pub fn h(&self) -> f64 {
        1.0 / self.m as f64
    }

    /// The point with flat index `i`.
    pub fn point(&self, i: usize) -> Point {
        let h = self.h();
        let (ix, iy) = (i % self.m, i / self.m);
        Point::new((ix as f64 + 0.5) * h, (iy as f64 + 0.5) * h)
    }

    /// All points in row-major order.
    pub fn points(&self) -> Vec<Point> {
        (0..self.n()).map(|i| self.point(i)).collect()
    }

    /// Integer offset between two flat indices, `(ix_i - ix_j, iy_i - iy_j)`.
    pub fn offset(&self, i: usize, j: usize) -> (i64, i64) {
        let (ix, iy) = ((i % self.m) as i64, (i / self.m) as i64);
        let (jx, jy) = ((j % self.m) as i64, (j / self.m) as i64);
        (ix - jx, iy - jy)
    }

    /// The domain bounding box (the unit square).
    pub fn bbox(&self) -> BBox {
        BBox::UNIT
    }
}

/// Deterministic pseudo-uniform points in the unit square (xorshift; used
/// by tests that need a non-grid distribution without pulling `rand` into
/// the library).
pub fn scattered_points(n: usize, seed: u64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Point::new(next(), next())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_layout_row_major() {
        let g = UnitGrid::new(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.h(), 0.25);
        let p0 = g.point(0);
        assert_eq!(p0, Point::new(0.125, 0.125));
        let p5 = g.point(5); // (ix=1, iy=1)
        assert_eq!(p5, Point::new(0.375, 0.375));
        let last = g.point(15);
        assert_eq!(last, Point::new(0.875, 0.875));
        assert_eq!(g.points().len(), 16);
    }

    #[test]
    fn grid_offsets() {
        let g = UnitGrid::new(8);
        assert_eq!(g.offset(0, 0), (0, 0));
        assert_eq!(g.offset(9, 0), (1, 1));
        assert_eq!(g.offset(0, 9), (-1, -1));
        // Offset determines distance on the grid.
        let (dx, dy) = g.offset(17, 42);
        let d = g.point(17).dist(&g.point(42));
        let want = g.h() * ((dx * dx + dy * dy) as f64).sqrt();
        assert!((d - want).abs() < 1e-14);
    }

    #[test]
    fn grid_points_inside_unit_square() {
        let g = UnitGrid::new(16);
        for p in g.points() {
            assert!(g.bbox().contains(&p));
        }
    }

    #[test]
    fn scattered_points_deterministic_and_inside() {
        let a = scattered_points(100, 42);
        let b = scattered_points(100, 42);
        assert_eq!(a.len(), 100);
        for (p, q) in a.iter().zip(b.iter()) {
            assert_eq!(p, q);
        }
        for p in &a {
            assert!((0.0..1.0).contains(&p.x) && (0.0..1.0).contains(&p.y));
        }
        let c = scattered_points(100, 43);
        assert!(a.iter().zip(c.iter()).any(|(p, q)| p != q));
    }
}
