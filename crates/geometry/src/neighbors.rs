//! Near field `N(B)`, distance-2 ring `M(B)` (Definition 2 of the paper),
//! and the supporting box-adjacency queries.

use crate::tree::BoxId;

/// Boxes at the same level within Chebyshev distance `d_lo..=d_hi` of `b`
/// (excluding `b` itself when `d_lo >= 1`), in row-major order.
fn ring(b: &BoxId, d_lo: u32, d_hi: u32) -> Vec<BoxId> {
    let s = b.side_count() as i64;
    let (bx, by) = (b.ix as i64, b.iy as i64);
    let mut out = Vec::new();
    for iy in (by - d_hi as i64).max(0)..=(by + d_hi as i64).min(s - 1) {
        for ix in (bx - d_hi as i64).max(0)..=(bx + d_hi as i64).min(s - 1) {
            let d = (ix - bx).abs().max((iy - by).abs()) as u32;
            if d >= d_lo && d <= d_hi {
                out.push(BoxId {
                    level: b.level,
                    ix: ix as u32,
                    iy: iy as u32,
                });
            }
        }
    }
    out
}

/// The near field `N(B)`: boxes adjacent to `B` at the same level
/// (Chebyshev distance exactly 1). At most 8.
pub fn near_field(b: &BoxId) -> Vec<BoxId> {
    ring(b, 1, 1)
}

/// The distance-2 neighbors `M(B) = N(N(B)) \ (N(B) ∪ B)` (Definition 2):
/// boxes at Chebyshev distance exactly 2. At most 16.
pub fn dist2_ring(b: &BoxId) -> Vec<BoxId> {
    ring(b, 2, 2)
}

/// `N(B) ∪ M(B)`: everything within distance 2, excluding `B`.
pub fn within_dist2(b: &BoxId) -> Vec<BoxId> {
    ring(b, 1, 2)
}

/// `true` if the two same-level boxes are adjacent (distance 1).
pub fn are_neighbors(a: &BoxId, b: &BoxId) -> bool {
    a.chebyshev(b) == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(level: u8, ix: u32, iy: u32) -> BoxId {
        BoxId { level, ix, iy }
    }

    #[test]
    fn interior_box_has_8_neighbors_16_dist2() {
        let b = id(4, 7, 7);
        assert_eq!(near_field(&b).len(), 8);
        assert_eq!(dist2_ring(&b).len(), 16);
        assert_eq!(within_dist2(&b).len(), 24);
    }

    #[test]
    fn corner_box_clipped() {
        let b = id(3, 0, 0);
        assert_eq!(near_field(&b).len(), 3);
        assert_eq!(dist2_ring(&b).len(), 5);
    }

    #[test]
    fn edge_box_clipped() {
        let b = id(3, 3, 0);
        assert_eq!(near_field(&b).len(), 5);
        // row y in {0,1,2}, x in {1..5}; distance-2 ring: x in {1,5} any y, plus y=2 others
        assert_eq!(dist2_ring(&b).len(), 9);
    }

    #[test]
    fn neighbor_relation_symmetric() {
        let a = id(5, 10, 12);
        for n in near_field(&a) {
            assert!(are_neighbors(&a, &n));
            assert!(near_field(&n).contains(&a), "asymmetry with {n:?}");
        }
        for m in dist2_ring(&a) {
            assert!(dist2_ring(&m).contains(&a));
            assert!(!are_neighbors(&a, &m));
        }
    }

    #[test]
    fn rings_are_disjoint_and_correct_distance() {
        let b = id(4, 8, 3);
        let n = near_field(&b);
        let m = dist2_ring(&b);
        for x in &n {
            assert_eq!(b.chebyshev(x), 1);
            assert!(!m.contains(x));
        }
        for x in &m {
            assert_eq!(b.chebyshev(x), 2);
        }
        // M(B) == N(N(B)) \ (N(B) ∪ {B}) — check the definition directly.
        let mut nn: Vec<BoxId> = n.iter().flat_map(near_field).collect();
        nn.sort_unstable();
        nn.dedup();
        nn.retain(|x| *x != b && !n.contains(x));
        let mut m_sorted = m.clone();
        m_sorted.sort_unstable();
        assert_eq!(nn, m_sorted);
    }

    /// The induction fact behind Theorem 2: if `C` is within distance 2 of
    /// `B` at a child level, their parents are within distance 1 — i.e.,
    /// modified interactions at the parent level stay inside the near
    /// field, so Assumption 1 keeps holding level after level.
    #[test]
    fn theorem2_parent_of_dist2_is_neighbor_or_self() {
        let b = id(5, 13, 6);
        let pb = b.parent().unwrap();
        for c in within_dist2(&b) {
            let pc = c.parent().unwrap();
            assert!(
                pb.chebyshev(&pc) <= 1,
                "parents of within-2 boxes must be within 1: {pc:?}"
            );
        }
    }

    /// And conversely: children of distance-2 parents are at distance >= 3,
    /// so their interactions are untouched kernel entries at merge time.
    #[test]
    fn children_of_dist2_parents_are_far() {
        let pa = id(4, 5, 5);
        for pb in dist2_ring(&pa) {
            for ca in pa.children() {
                for cb in pb.children() {
                    assert!(ca.chebyshev(&cb) >= 3, "{ca:?} vs {cb:?}");
                }
            }
        }
    }
}
