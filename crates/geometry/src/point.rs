//! 2-D points and axis-aligned bounding boxes.

/// A point in the plane.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Construct from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// Axis-aligned square bounding box given by its lower-left corner and side.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BBox {
    /// Lower-left corner.
    pub lo: Point,
    /// Side length (squares only: the quad-tree halves sides exactly).
    pub side: f64,
}

impl BBox {
    /// The unit square `[0,1]^2`.
    pub const UNIT: BBox = BBox {
        lo: Point::new(0.0, 0.0),
        side: 1.0,
    };

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(self.lo.x + 0.5 * self.side, self.lo.y + 0.5 * self.side)
    }

    /// `true` if `p` lies inside (half-open: lower edges in, upper out).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.lo.x
            && p.x < self.lo.x + self.side
            && p.y >= self.lo.y
            && p.y < self.lo.y + self.side
    }

    /// Smallest enclosing square of a point set (with a tiny margin so that
    /// every point satisfies the half-open containment test).
    pub fn enclosing(points: &[Point]) -> BBox {
        assert!(!points.is_empty());
        let mut lo = Point::new(f64::INFINITY, f64::INFINITY);
        let mut hi = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            lo.x = lo.x.min(p.x);
            lo.y = lo.y.min(p.y);
            hi.x = hi.x.max(p.x);
            hi.y = hi.y.max(p.y);
        }
        let extent = (hi.x - lo.x).max(hi.y - lo.y);
        let margin = 1e-12 * (1.0 + lo.x.abs() + lo.y.abs() + extent);
        BBox {
            lo,
            side: extent * (1.0 + 1e-12) + margin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn bbox_contains_half_open() {
        let b = BBox::UNIT;
        assert!(b.contains(&Point::new(0.0, 0.0)));
        assert!(b.contains(&Point::new(0.999, 0.5)));
        assert!(!b.contains(&Point::new(1.0, 0.5)));
        assert!(!b.contains(&Point::new(-0.1, 0.5)));
        assert_eq!(b.center(), Point::new(0.5, 0.5));
    }

    #[test]
    fn enclosing_box_covers_all_points() {
        let pts = vec![
            Point::new(0.1, 0.9),
            Point::new(-2.0, 0.3),
            Point::new(1.5, -0.7),
        ];
        let b = BBox::enclosing(&pts);
        for p in &pts {
            assert!(b.contains(p), "{p:?} not in {b:?}");
        }
        // Square: side covers the larger extent.
        assert!(b.side >= 3.5);
    }

    #[test]
    fn enclosing_degenerate_single_point() {
        let pts = vec![Point::new(0.5, 0.5)];
        let b = BBox::enclosing(&pts);
        assert!(b.contains(&pts[0]));
    }
}
