//! Small shared helpers for tests, examples and the bench harness.

use srsf_linalg::Scalar;

/// Deterministic pseudo-random vector with entries uniform in `[0, 1)`
/// (complex types get independent real and imaginary parts) — the paper's
/// "standard uniform random vector" right-hand sides, reproducible by seed.
pub fn random_vector<T: Scalar>(n: usize, seed: u64) -> Vec<T> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            let re = next();
            let im = if T::IS_COMPLEX { next() } else { 0.0 };
            T::from_re_im(re, im)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use srsf_linalg::c64;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<f64> = random_vector(50, 1);
        let b: Vec<f64> = random_vector(50, 1);
        let c: Vec<f64> = random_vector(50, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn in_unit_interval() {
        let v: Vec<f64> = random_vector(1000, 9);
        for x in &v {
            assert!((0.0..1.0).contains(x));
        }
        // Mean roughly 1/2 (sanity, not a statistical test).
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean - 0.5).abs() < 0.05);
    }

    #[test]
    fn complex_gets_both_parts() {
        let v: Vec<c64> = random_vector(100, 3);
        assert!(v.iter().any(|z| z.im != 0.0));
        for z in &v {
            assert!((0.0..1.0).contains(&z.re) && (0.0..1.0).contains(&z.im));
        }
    }
}
