//! The 2-D Helmholtz / Lippmann–Schwinger kernel (Eqs. 18–21 of the paper).
//!
//! The variable-coefficient Helmholtz equation is reformulated as the
//! Lippmann–Schwinger equation, symmetrized by `mu = sigma / sqrt(b)`, and
//! collocated on the uniform grid:
//!
//! * off-diagonal: `A[i,j] = h^2 κ^2 sqrt(b_i b_j) · (i/4) H0^(1)(κ r)`;
//! * diagonal: `A[i,i] = 1 + κ^2 b_i ∫_cell (i/4) H0^(1)(κ ||x||) dx`.
//!
//! The scattering potential `0 < b(x) <= 1` is smooth and compactly
//! concentrated; the paper uses the Gaussian bump
//! `b(x) = exp(-32 ||x - c||^2)` centered at `c = (1/2, 1/2)`.

use crate::kernel::Kernel;
use srsf_geometry::grid::UnitGrid;
use srsf_geometry::point::Point;
use srsf_linalg::c64;
use srsf_special::bessel::{j0, y0};
use srsf_special::singular::helmholtz_self_integral;

/// The paper's Gaussian bump scattering potential
/// `b(x) = exp(-32 ||x - (1/2,1/2)||^2)`.
pub fn gaussian_bump(p: Point) -> f64 {
    let dx = p.x - 0.5;
    let dy = p.y - 0.5;
    (-32.0 * (dx * dx + dy * dy)).exp()
}

/// Lippmann–Schwinger kernel on a uniform grid.
#[derive(Clone, Debug)]
pub struct HelmholtzKernel {
    kappa: f64,
    /// `h^2 κ^2` prefactor.
    prefactor: f64,
    /// `sqrt(b(x_i))` per grid point.
    sqrt_b: Vec<f64>,
    /// `(i/4) ∫_cell H0^(1)(κ ||x||) dx` (shared by all diagonal entries).
    self_int: c64,
}

impl HelmholtzKernel {
    /// Build with the paper's Gaussian-bump potential.
    pub fn new(grid: &UnitGrid, kappa: f64) -> Self {
        Self::with_potential(grid, kappa, gaussian_bump)
    }

    /// Build with an arbitrary scattering potential `b` (values clamped to
    /// be positive so `sqrt` and the symmetrization stay well-defined).
    pub fn with_potential(grid: &UnitGrid, kappa: f64, b: impl Fn(Point) -> f64) -> Self {
        assert!(kappa > 0.0);
        let h = grid.h();
        let sqrt_b = (0..grid.n())
            .map(|i| b(grid.point(i)).max(1e-300).sqrt())
            .collect();
        let (re, im) = helmholtz_self_integral(kappa, h);
        Self {
            kappa,
            prefactor: h * h * kappa * kappa,
            sqrt_b,
            self_int: c64::new(re, im),
        }
    }

    /// The wavenumber.
    pub fn wavenumber(&self) -> f64 {
        self.kappa
    }

    /// `sqrt(b)` at grid point `i` (needed to map `mu` back to `sigma`).
    pub fn sqrt_b(&self, i: usize) -> f64 {
        self.sqrt_b[i]
    }

    /// `(i/4) H0^(1)(κ r)` as a complex number.
    #[inline]
    fn green(&self, r: f64) -> c64 {
        let z = self.kappa * r;
        // (i/4)(J0 + i Y0) = -Y0/4 + i J0/4
        c64::new(-0.25 * y0(z), 0.25 * j0(z))
    }
}

impl Kernel for HelmholtzKernel {
    type Elem = c64;

    fn entry(&self, pts: &[Point], i: usize, j: usize) -> c64 {
        let r = pts[i].dist(&pts[j]);
        self.green(r)
            .scale(self.prefactor * self.sqrt_b[i] * self.sqrt_b[j])
    }

    fn diag(&self, _pts: &[Point], i: usize) -> c64 {
        let b = self.sqrt_b[i] * self.sqrt_b[i];
        c64::ONE + self.self_int.scale(self.kappa * self.kappa * b)
    }

    fn proxy_row(&self, pts: &[Point], y: Point, j: usize) -> c64 {
        let r = y.dist(&pts[j]);
        self.green(r).scale(self.prefactor * self.sqrt_b[j])
    }

    fn proxy_col(&self, pts: &[Point], i: usize, y: Point) -> c64 {
        let r = pts[i].dist(&y);
        self.green(r).scale(self.prefactor * self.sqrt_b[i])
    }

    fn kappa(&self) -> f64 {
        self.kappa
    }

    fn is_translation_invariant(&self) -> bool {
        // entry = sqrt(b_i) · [prefactor · green(r)] · sqrt(b_j): the
        // bracket is a pure function of the offset, the density factors
        // are the per-point scaling.
        true
    }

    fn point_scale(&self, i: usize) -> f64 {
        self.sqrt_b[i]
    }

    fn is_symmetric(&self) -> bool {
        // Complex symmetric (A = Aᵀ, not Hermitian): the Green's function
        // is even in the offset and both points carry the same sqrt(b).
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_shape() {
        assert!((gaussian_bump(Point::new(0.5, 0.5)) - 1.0).abs() < 1e-15);
        let edge = gaussian_bump(Point::new(0.0, 0.0));
        assert!(edge < 1e-6 && edge > 0.0);
        // radially symmetric
        let a = gaussian_bump(Point::new(0.7, 0.5));
        let b = gaussian_bump(Point::new(0.5, 0.7));
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn entries_match_eq_20() {
        let grid = UnitGrid::new(16);
        let k = HelmholtzKernel::new(&grid, 25.0);
        let pts = grid.points();
        let h = grid.h();
        let (i, j) = (5, 200);
        let r = pts[i].dist(&pts[j]);
        let bi = gaussian_bump(pts[i]);
        let bj = gaussian_bump(pts[j]);
        let z = 25.0 * r;
        let want =
            c64::new(-0.25 * y0(z), 0.25 * j0(z)).scale(h * h * 25.0 * 25.0 * (bi * bj).sqrt());
        let got = k.entry(&pts, i, j);
        assert!((got - want).norm() < 1e-13 * want.norm());
        // Symmetry of the symmetrized formulation.
        assert!((k.entry(&pts, j, i) - got).norm() < 1e-15);
    }

    #[test]
    fn diagonal_matches_eq_21() {
        let grid = UnitGrid::new(16);
        let kappa = 25.0;
        let k = HelmholtzKernel::new(&grid, kappa);
        let pts = grid.points();
        // Center point: b = max.
        let i_center = grid.n() / 2 + grid.side() / 2;
        let d = k.diag(&pts, i_center);
        let b = gaussian_bump(pts[i_center]);
        let (sr, si) = helmholtz_self_integral(kappa, grid.h());
        let want = c64::ONE + c64::new(sr, si).scale(kappa * kappa * b);
        assert!((d - want).norm() < 1e-13);
        // Far-corner point: b ~ 0, so diag ~ 1.
        let d0 = k.diag(&pts, 0);
        assert!((d0 - c64::ONE).norm() < 1e-4);
    }

    #[test]
    fn proxy_rows_scale_with_single_sqrt_b() {
        let grid = UnitGrid::new(8);
        let k = HelmholtzKernel::new(&grid, 10.0);
        let pts = grid.points();
        let y = Point::new(1.7, -0.3); // off-grid proxy
        let pr = k.proxy_row(&pts, y, 5);
        let pc = k.proxy_col(&pts, 5, y);
        // Symmetric kernel: proxy row and proxy col agree.
        assert!((pr - pc).norm() < 1e-15);
        // Scaling: exactly one sqrt_b factor relative to the raw Green fn.
        let r = y.dist(&pts[5]);
        let raw = c64::new(-0.25 * y0(10.0 * r), 0.25 * j0(10.0 * r));
        let h = grid.h();
        let want = raw.scale(h * h * 100.0 * k.sqrt_b(5));
        assert!((pr - want).norm() < 1e-15);
    }

    #[test]
    fn constant_potential_gives_translation_invariance() {
        let grid = UnitGrid::new(8);
        let k = HelmholtzKernel::with_potential(&grid, 5.0, |_| 1.0);
        let pts = grid.points();
        // Same offset -> same entry.
        let e1 = k.entry(&pts, 0, 3);
        let e2 = k.entry(&pts, 8, 11); // shifted one row
        assert!((e1 - e2).norm() < 1e-15);
        assert_eq!(k.kappa(), 5.0);
    }
}
