//! The kernel abstraction consumed by the factorization.
//!
//! A [`Kernel`] produces matrix entries of the discretized integral
//! operator, *including every scaling the discretization introduces*
//! (quadrature weights `h^2`, density factors `sqrt(b_i b_j)`, …), plus the
//! interactions against off-grid proxy points needed by the compression
//! step. Entries are indexed against a shared point slice, which must be
//! the same slice handed to the factorization.

use srsf_geometry::point::Point;
use srsf_linalg::{Mat, Scalar};

/// A discretized integral-equation kernel.
pub trait Kernel: Send + Sync {
    /// Matrix element type (`f64` for Laplace, `c64` for Helmholtz).
    type Elem: Scalar;

    /// Off-diagonal entry `A[i,j]`, `i != j`.
    fn entry(&self, pts: &[Point], i: usize, j: usize) -> Self::Elem;

    /// Diagonal entry `A[i,i]` (the singular self-interaction integral).
    fn diag(&self, pts: &[Point], i: usize) -> Self::Elem;

    /// Interaction with an off-grid proxy point `y` as the *row* and grid
    /// point `j` as the *column*: the row block `K_{proxy,B}` of Eq. (7).
    /// Includes the column's scalings but treats the proxy as unweighted.
    fn proxy_row(&self, pts: &[Point], y: Point, j: usize) -> Self::Elem;

    /// Interaction with grid point `i` as the *row* and proxy `y` as the
    /// *column* — the transposed-side block `K_{B,proxy}`.
    fn proxy_col(&self, pts: &[Point], i: usize, y: Point) -> Self::Elem;

    /// Oscillation parameter (`kappa` for Helmholtz, 0 for Laplace); drives
    /// the proxy point-count rule.
    fn kappa(&self) -> f64 {
        0.0
    }

    /// True when off-diagonal entries factor as
    /// `A[i,j] = point_scale(i) · t(x_i − x_j) · point_scale(j)` with a
    /// real scaling and an *even* symbol (`t(−d) = t(d)`) — the structure
    /// the FFT leaf fast path exploits: on a uniform grid, unmodified
    /// blocks can then be applied through a Toeplitz circulant embedding,
    /// or assembled from a precomputed symbol table, instead of being
    /// evaluated entry by entry. Both paper kernels qualify (Laplace
    /// exactly, Helmholtz with `point_scale = sqrt(b_i)`). Defaults to
    /// `false`; claiming it wrongly produces wrong answers, not just slow
    /// ones.
    fn is_translation_invariant(&self) -> bool {
        false
    }

    /// True when the assembled operator is (complex-)symmetric:
    /// `entry(i, j) == entry(j, i)` exactly, i.e. `A = Aᵀ` — *not*
    /// Hermitian for complex kernels. For a real symmetric kernel the
    /// forward and adjoint directions of an unmodified pair coincide
    /// (`A_{B,M}ᴴ = A_{M,B}`), so the randomized compression evaluates
    /// each ring block once and sketches both directions with a single
    /// combined GEMM. Both paper kernels qualify (Laplace is real
    /// symmetric; Helmholtz is complex symmetric because both points
    /// carry the same `sqrt(b)` factor). The proxy interactions must obey
    /// the same symmetry: `proxy_row(y, j) == proxy_col(j, y)`. Defaults
    /// to `false`.
    fn is_symmetric(&self) -> bool {
        false
    }

    /// The per-point scaling `s_i` of the translation-invariant
    /// factorization (see [`Kernel::is_translation_invariant`]); identity
    /// by default.
    fn point_scale(&self, _i: usize) -> f64 {
        1.0
    }

    /// Stable identifier mixed into randomized-compression sketch seeds,
    /// so different kernels draw different sketches while the same kernel
    /// draws the same sketch on every driver, thread count, and
    /// transport. Defaults to the bits of `kappa`.
    fn seed_id(&self) -> u64 {
        self.kappa().to_bits()
    }

    /// `A[i,j]` with the diagonal case folded in.
    fn entry_or_diag(&self, pts: &[Point], i: usize, j: usize) -> Self::Elem {
        if i == j {
            self.diag(pts, i)
        } else {
            self.entry(pts, i, j)
        }
    }

    /// Assemble the dense block `A[rows, cols]`.
    fn block(&self, pts: &[Point], rows: &[usize], cols: &[usize]) -> Mat<Self::Elem> {
        Mat::from_fn(rows.len(), cols.len(), |i, j| {
            self.entry_or_diag(pts, rows[i], cols[j])
        })
    }
}
