//! The kernel abstraction consumed by the factorization.
//!
//! A [`Kernel`] produces matrix entries of the discretized integral
//! operator, *including every scaling the discretization introduces*
//! (quadrature weights `h^2`, density factors `sqrt(b_i b_j)`, …), plus the
//! interactions against off-grid proxy points needed by the compression
//! step. Entries are indexed against a shared point slice, which must be
//! the same slice handed to the factorization.

use srsf_geometry::point::Point;
use srsf_linalg::{Mat, Scalar};

/// A discretized integral-equation kernel.
pub trait Kernel: Send + Sync {
    /// Matrix element type (`f64` for Laplace, `c64` for Helmholtz).
    type Elem: Scalar;

    /// Off-diagonal entry `A[i,j]`, `i != j`.
    fn entry(&self, pts: &[Point], i: usize, j: usize) -> Self::Elem;

    /// Diagonal entry `A[i,i]` (the singular self-interaction integral).
    fn diag(&self, pts: &[Point], i: usize) -> Self::Elem;

    /// Interaction with an off-grid proxy point `y` as the *row* and grid
    /// point `j` as the *column*: the row block `K_{proxy,B}` of Eq. (7).
    /// Includes the column's scalings but treats the proxy as unweighted.
    fn proxy_row(&self, pts: &[Point], y: Point, j: usize) -> Self::Elem;

    /// Interaction with grid point `i` as the *row* and proxy `y` as the
    /// *column* — the transposed-side block `K_{B,proxy}`.
    fn proxy_col(&self, pts: &[Point], i: usize, y: Point) -> Self::Elem;

    /// Oscillation parameter (`kappa` for Helmholtz, 0 for Laplace); drives
    /// the proxy point-count rule.
    fn kappa(&self) -> f64 {
        0.0
    }

    /// `A[i,j]` with the diagonal case folded in.
    fn entry_or_diag(&self, pts: &[Point], i: usize, j: usize) -> Self::Elem {
        if i == j {
            self.diag(pts, i)
        } else {
            self.entry(pts, i, j)
        }
    }

    /// Assemble the dense block `A[rows, cols]`.
    fn block(&self, pts: &[Point], rows: &[usize], cols: &[usize]) -> Mat<Self::Elem> {
        Mat::from_fn(rows.len(), cols.len(), |i, j| {
            self.entry_or_diag(pts, rows[i], cols[j])
        })
    }
}
