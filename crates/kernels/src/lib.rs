//! `srsf-kernels`: integral-equation kernels and matrix assembly.
//!
//! Defines the [`kernel::Kernel`] abstraction the factorization consumes and
//! its two concrete instances from the paper's experiments:
//!
//! * [`laplace`] — the first-kind volume IE for the 2-D Laplace equation
//!   (Eqs. 14–17): `A_ij = -(h^2 / 2π) ln ||x_i - x_j||` with a closed-form
//!   singular diagonal.
//! * [`helmholtz`] — the Lippmann–Schwinger equation (Eqs. 18–21):
//!   `A_ij = h^2 κ^2 sqrt(b_i b_j) (i/4) H0^(1)(κ r)` with a Gaussian-bump
//!   scattering potential.
//!
//! Plus the operators used to validate and benchmark:
//!
//! * [`assemble`] — dense block assembly and a dense reference operator.
//! * [`fast_op`] — the FFT-based fast matvec (translation-invariant part via
//!   circulant embedding, diagonal and `sqrt(b)` scalings applied around it).
//! * [`field`] — incident plane waves and total-field evaluation (Figure 7).
//! * [`util`] — seeded random vectors and small helpers shared by tests,
//!   examples and the bench harness.

#![forbid(unsafe_code)]

pub mod assemble;
pub mod fast_op;
pub mod field;
pub mod helmholtz;
pub mod kernel;
pub mod laplace;
pub mod util;

pub use assemble::{assemble_block, assemble_dense, DenseKernelOp};
pub use fast_op::FastKernelOp;
pub use helmholtz::{gaussian_bump, HelmholtzKernel};
pub use kernel::Kernel;
pub use laplace::LaplaceKernel;
