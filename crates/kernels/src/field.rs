//! Incident waves, right-hand sides, and scattered/total fields for the
//! Lippmann–Schwinger experiments (Figure 7 of the paper).

use crate::helmholtz::HelmholtzKernel;
use srsf_fft::toeplitz::Toeplitz2D;
use srsf_geometry::grid::UnitGrid;
use srsf_geometry::point::Point;
use srsf_linalg::c64;
use srsf_special::bessel::{j0, y0};
use srsf_special::singular::helmholtz_self_integral;

/// Incident plane wave `u_in(x) = e^{i kappa d·x}` with unit direction `d`.
pub fn plane_wave(pts: &[Point], kappa: f64, dir: (f64, f64)) -> Vec<c64> {
    let norm = (dir.0 * dir.0 + dir.1 * dir.1).sqrt();
    let (dx, dy) = (dir.0 / norm, dir.1 / norm);
    pts.iter()
        .map(|p| c64::from_polar(1.0, kappa * (dx * p.x + dy * p.y)))
        .collect()
}

/// Right-hand side of the symmetrized Lippmann–Schwinger system:
/// `rhs_i = -kappa^2 sqrt(b_i) u_in(x_i)` (solve `A mu = rhs`, then
/// `sigma = sqrt(b) mu`).
pub fn lippmann_schwinger_rhs(kernel: &HelmholtzKernel, _pts: &[Point], uin: &[c64]) -> Vec<c64> {
    let k2 = kernel.wavenumber() * kernel.wavenumber();
    uin.iter()
        .enumerate()
        .map(|(i, u)| u.scale(-k2 * kernel.sqrt_b(i)))
        .collect()
}

/// Recover the physical density `sigma = sqrt(b) mu` from the symmetrized
/// unknown.
pub fn sigma_from_mu(kernel: &HelmholtzKernel, mu: &[c64]) -> Vec<c64> {
    mu.iter()
        .enumerate()
        .map(|(i, m)| m.scale(kernel.sqrt_b(i)))
        .collect()
}

/// Total field on the grid:
/// `u = u_in + ∫ K(x,y) sigma(y) dy ≈ u_in + h^2 Σ_j (i/4) H0(κ r) σ_j`,
/// with the self-cell integral used on the diagonal. O(N log N) via the
/// circulant embedding.
pub fn total_field_on_grid(grid: &UnitGrid, kappa: f64, sigma: &[c64], uin: &[c64]) -> Vec<c64> {
    assert_eq!(sigma.len(), grid.n());
    assert_eq!(uin.len(), grid.n());
    let h = grid.h();
    let w = h * h;
    let toeplitz = Toeplitz2D::new(grid.side(), |dx, dy| {
        if dx == 0 && dy == 0 {
            c64::ZERO
        } else {
            let r = h * ((dx * dx + dy * dy) as f64).sqrt();
            let z = kappa * r;
            c64::new(-0.25 * y0(z), 0.25 * j0(z)).scale(w)
        }
    });
    let (sr, si) = helmholtz_self_integral(kappa, h);
    let self_term = c64::new(sr, si);
    let mut u = toeplitz.apply(sigma);
    for (ui, (s, inc)) in u.iter_mut().zip(sigma.iter().zip(uin.iter())) {
        *ui += self_term * *s + *inc;
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_wave_unit_modulus_and_phase() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.5),
        ];
        let u = plane_wave(&pts, 2.0 * core::f64::consts::PI, (1.0, 0.0));
        for v in &u {
            assert!((v.norm() - 1.0).abs() < 1e-14);
        }
        // Full wavelength along x: back to phase 0.
        assert!((u[1] - u[0]).norm() < 1e-12);
        assert_eq!(u[0], c64::ONE);
    }

    #[test]
    fn plane_wave_direction_normalized() {
        let pts = vec![Point::new(1.0, 1.0)];
        let a = plane_wave(&pts, 3.0, (2.0, 0.0));
        let b = plane_wave(&pts, 3.0, (1.0, 0.0));
        assert!((a[0] - b[0]).norm() < 1e-14);
    }

    #[test]
    fn rhs_and_sigma_scalings() {
        let grid = UnitGrid::new(8);
        let k = HelmholtzKernel::new(&grid, 5.0);
        let pts = grid.points();
        let uin = plane_wave(&pts, 5.0, (1.0, 0.0));
        let rhs = lippmann_schwinger_rhs(&k, &pts, &uin);
        // center has b ~ 1 so |rhs| ~ kappa^2 there
        let ic = grid.n() / 2 + grid.side() / 2;
        assert!((rhs[ic].norm() - 25.0 * k.sqrt_b(ic)).abs() < 1e-10);
        let mu: Vec<c64> = (0..grid.n()).map(|i| c64::new(i as f64, 1.0)).collect();
        let sigma = sigma_from_mu(&k, &mu);
        assert!((sigma[ic] - mu[ic].scale(k.sqrt_b(ic))).norm() < 1e-15);
    }

    #[test]
    fn zero_density_total_field_is_incident() {
        let grid = UnitGrid::new(8);
        let pts = grid.points();
        let uin = plane_wave(&pts, 10.0, (1.0, 0.0));
        let sigma = vec![c64::ZERO; grid.n()];
        let u = total_field_on_grid(&grid, 10.0, &sigma, &uin);
        for (a, b) in u.iter().zip(uin.iter()) {
            assert!((*a - *b).norm() < 1e-13);
        }
    }

    #[test]
    fn total_field_matches_direct_sum() {
        let grid = UnitGrid::new(8);
        let pts = grid.points();
        let kappa = 7.0;
        let uin = plane_wave(&pts, kappa, (0.0, 1.0));
        let sigma: Vec<c64> = (0..grid.n())
            .map(|i| c64::new((i % 5) as f64 - 2.0, (i % 3) as f64))
            .collect();
        let fast = total_field_on_grid(&grid, kappa, &sigma, &uin);
        let h = grid.h();
        let (sr, si) = helmholtz_self_integral(kappa, h);
        for i in 0..grid.n() {
            let mut acc = uin[i] + c64::new(sr, si) * sigma[i];
            for j in 0..grid.n() {
                if i == j {
                    continue;
                }
                let z = kappa * pts[i].dist(&pts[j]);
                acc += c64::new(-0.25 * y0(z), 0.25 * j0(z)).scale(h * h) * sigma[j];
            }
            assert!((fast[i] - acc).norm() < 1e-10, "mismatch at {i}");
        }
    }
}
