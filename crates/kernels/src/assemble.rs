//! Dense assembly of kernel matrices (reference path for validation and
//! small problems).

use crate::kernel::Kernel;
use srsf_geometry::point::Point;
use srsf_linalg::{LinOp, Mat, Scalar};

/// Assemble the dense block `A[rows, cols]`.
pub fn assemble_block<K: Kernel>(
    kernel: &K,
    pts: &[Point],
    rows: &[usize],
    cols: &[usize],
) -> Mat<K::Elem> {
    kernel.block(pts, rows, cols)
}

/// Assemble the full dense matrix. Quadratic memory — only for validation.
pub fn assemble_dense<K: Kernel>(kernel: &K, pts: &[Point]) -> Mat<K::Elem> {
    let idx: Vec<usize> = (0..pts.len()).collect();
    kernel.block(pts, &idx, &idx)
}

/// A lazily-evaluated dense kernel operator: `O(N^2)` work per apply but no
/// `O(N^2)` storage, which keeps the reference residual path usable at
/// mid-size `N`.
pub struct DenseKernelOp<T> {
    n: usize,
    row_chunks: Vec<Mat<T>>,
    chunk: usize,
}

impl<T: Scalar> DenseKernelOp<T> {
    /// Pre-assemble in row chunks (bounded temporary memory during build,
    /// contiguous GEMV-friendly blocks afterwards).
    pub fn new<K: Kernel<Elem = T>>(kernel: &K, pts: &[Point]) -> Self {
        let n = pts.len();
        let chunk = 512.min(n.max(1));
        let cols: Vec<usize> = (0..n).collect();
        let mut row_chunks = Vec::new();
        let mut r0 = 0;
        while r0 < n {
            let r1 = (r0 + chunk).min(n);
            let rows: Vec<usize> = (r0..r1).collect();
            row_chunks.push(kernel.block(pts, &rows, &cols));
            r0 = r1;
        }
        Self {
            n,
            row_chunks,
            chunk,
        }
    }
}

impl<T: Scalar> LinOp<T> for DenseKernelOp<T> {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![T::ZERO; self.n];
        for (c, block) in self.row_chunks.iter().enumerate() {
            let r0 = c * self.chunk;
            let rows = block.nrows();
            block.matvec_acc_into(x, &mut y[r0..r0 + rows]);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplace::LaplaceKernel;
    use srsf_geometry::grid::UnitGrid;
    use srsf_linalg::norms::max_abs_diff;

    #[test]
    fn dense_assembly_symmetric_for_laplace() {
        let grid = UnitGrid::new(8);
        let k = LaplaceKernel::new(&grid);
        let pts = grid.points();
        let a = assemble_dense(&k, &pts);
        assert_eq!(a.nrows(), 64);
        let at = a.transpose();
        assert!(max_abs_diff(&a, &at) < 1e-15);
    }

    #[test]
    fn block_is_submatrix_of_dense() {
        let grid = UnitGrid::new(4);
        let k = LaplaceKernel::new(&grid);
        let pts = grid.points();
        let a = assemble_dense(&k, &pts);
        let rows = [3usize, 7, 11];
        let cols = [0usize, 7];
        let b = assemble_block(&k, &pts, &rows, &cols);
        for (bi, &i) in rows.iter().enumerate() {
            for (bj, &j) in cols.iter().enumerate() {
                assert_eq!(b[(bi, bj)], a[(i, j)]);
            }
        }
    }

    #[test]
    fn op_matches_dense_matvec() {
        let grid = UnitGrid::new(8);
        let k = LaplaceKernel::new(&grid);
        let pts = grid.points();
        let a = assemble_dense(&k, &pts);
        let op = DenseKernelOp::new(&k, &pts);
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let want = a.matvec(&x);
        let got = op.apply(&x);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-13);
        }
        assert_eq!(op.dim(), 64);
    }
}
