//! The 2-D Laplace volume-IE kernel (Eqs. 14–17 of the paper).
//!
//! First-kind volume integral equation on the unit square, discretized by
//! piecewise-constant collocation on a uniform grid:
//!
//! * off-diagonal: `A[i,j] = -(h^2 / 2π) ln ||x_i - x_j||`;
//! * diagonal: `A[i,i] = -(1/2π) ∫_cell ln ||x|| dx`, evaluated in closed
//!   form (see `srsf_special::singular`).
//!
//! The resulting system is symmetric positive definite but ill-conditioned
//! (condition number growing like `O(N)`), which is exactly the regime
//! where the paper argues a direct solver beats unpreconditioned CG.

use crate::kernel::Kernel;
use srsf_geometry::grid::UnitGrid;
use srsf_geometry::point::Point;
use srsf_special::singular::laplace_log_self_integral;

/// Laplace log kernel with collocation weight `h^2`.
#[derive(Clone, Debug)]
pub struct LaplaceKernel {
    /// Quadrature weight per source cell (`h^2` on the uniform grid).
    weight: f64,
    /// Precomputed diagonal value.
    diag: f64,
}

impl LaplaceKernel {
    /// Kernel for the paper's uniform-grid collocation discretization.
    pub fn new(grid: &UnitGrid) -> Self {
        let h = grid.h();
        Self {
            weight: h * h,
            diag: -laplace_log_self_integral(h) / (2.0 * core::f64::consts::PI),
        }
    }

    /// Custom weight and diagonal — used for non-grid point clouds in tests
    /// and ablations.
    pub fn with_params(weight: f64, diag: f64) -> Self {
        Self { weight, diag }
    }

    #[inline]
    fn eval(&self, a: Point, b: Point) -> f64 {
        let r2 = a.dist_sq(&b);
        debug_assert!(r2 > 0.0, "coincident points reached the off-diagonal path");
        // -(w / 2π) ln r = -(w / 4π) ln r^2
        -self.weight * r2.ln() / (4.0 * core::f64::consts::PI)
    }
}

impl Kernel for LaplaceKernel {
    type Elem = f64;

    fn entry(&self, pts: &[Point], i: usize, j: usize) -> f64 {
        self.eval(pts[i], pts[j])
    }

    fn diag(&self, _pts: &[Point], _i: usize) -> f64 {
        self.diag
    }

    fn proxy_row(&self, pts: &[Point], y: Point, j: usize) -> f64 {
        self.eval(y, pts[j])
    }

    fn proxy_col(&self, pts: &[Point], i: usize, y: Point) -> f64 {
        self.eval(pts[i], y)
    }

    fn is_translation_invariant(&self) -> bool {
        // entry = -(w / 4π) ln r²: a pure function of the offset, with no
        // per-point scaling.
        true
    }

    fn is_symmetric(&self) -> bool {
        // r² is even in the offset, so entry(i, j) == entry(j, i) bitwise.
        true
    }

    fn seed_id(&self) -> u64 {
        self.weight.to_bits() ^ self.diag.to_bits().rotate_left(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_match_eq_16() {
        let grid = UnitGrid::new(8);
        let k = LaplaceKernel::new(&grid);
        let pts = grid.points();
        let h = grid.h();
        let r = pts[0].dist(&pts[3]);
        let want = -h * h / (2.0 * core::f64::consts::PI) * r.ln();
        assert!((k.entry(&pts, 0, 3) - want).abs() < 1e-15);
        // Symmetry.
        assert_eq!(k.entry(&pts, 0, 3), k.entry(&pts, 3, 0));
    }

    #[test]
    fn diagonal_positive_and_dominates_close_entries() {
        let grid = UnitGrid::new(32);
        let k = LaplaceKernel::new(&grid);
        let pts = grid.points();
        let d = k.diag(&pts, 0);
        assert!(d > 0.0);
        // Nearest-neighbor off-diagonal is positive too (ln(h) < 0) and
        // smaller than the diagonal.
        let near = k.entry(&pts, 0, 1);
        assert!(near > 0.0);
        assert!(d > near);
    }

    #[test]
    fn proxy_entries_consistent_with_grid_entries() {
        let grid = UnitGrid::new(8);
        let k = LaplaceKernel::new(&grid);
        let pts = grid.points();
        // A proxy placed exactly on a grid point reproduces the entry.
        let y = pts[10];
        assert_eq!(k.proxy_row(&pts, y, 3), k.entry(&pts, 10, 3));
        assert_eq!(k.proxy_col(&pts, 3, y), k.entry(&pts, 3, 10));
        assert_eq!(k.kappa(), 0.0);
    }

    #[test]
    fn block_assembly_handles_diagonal() {
        let grid = UnitGrid::new(4);
        let k = LaplaceKernel::new(&grid);
        let pts = grid.points();
        let m = k.block(&pts, &[0, 1], &[1, 2]);
        assert_eq!(m[(0, 0)], k.entry(&pts, 0, 1));
        assert_eq!(m[(1, 0)], k.diag(&pts, 1)); // row 1, col 1
        assert_eq!(m[(1, 1)], k.entry(&pts, 1, 2));
    }
}
