//! FFT-accelerated kernel matvec on uniform grids.
//!
//! Splits `A = D T D + (diag - D t(0) D)` where `T` is the translation-
//! invariant part (applied through a circulant embedding, see
//! `srsf_fft::toeplitz`), `D` the per-point scaling (`sqrt(b_i)` for
//! Helmholtz, identity for Laplace), and `diag` the true singular
//! diagonal. The symbol stores `t(0,0) = 0` so the diagonal is exact.
//!
//! O(N log N) per apply — the path the paper uses to report `relres` at
//! `N = 10^9`.

use crate::helmholtz::HelmholtzKernel;
use crate::kernel::Kernel;
use crate::laplace::LaplaceKernel;
use srsf_fft::toeplitz::Toeplitz2D;
use srsf_geometry::grid::UnitGrid;
use srsf_linalg::{c64, LinOp, Scalar};

/// FFT fast operator for a kernel on a [`UnitGrid`].
pub struct FastKernelOp<T> {
    n: usize,
    toeplitz: Toeplitz2D,
    /// Exact diagonal entries.
    diag: Vec<T>,
    /// Row/column scaling `D` (empty = identity).
    scale: Vec<f64>,
}

impl FastKernelOp<f64> {
    /// Build the fast operator for the Laplace kernel.
    pub fn laplace(kernel: &LaplaceKernel, grid: &UnitGrid) -> Self {
        let pts = grid.points();
        let m = grid.side();
        let toeplitz = Toeplitz2D::new(m, |dx, dy| {
            if dx == 0 && dy == 0 {
                c64::ZERO
            } else {
                // entry between two grid points at this offset
                let i = offset_pair(m, dx, dy);
                c64::new(kernel.entry(&pts, i.0, i.1), 0.0)
            }
        });
        let diag: Vec<f64> = (0..grid.n()).map(|i| kernel.diag(&pts, i)).collect();
        Self {
            n: grid.n(),
            toeplitz,
            diag,
            scale: Vec::new(),
        }
    }
}

impl FastKernelOp<c64> {
    /// Build the fast operator for the Helmholtz kernel: the `sqrt(b)`
    /// factors become the diagonal scaling `D`.
    pub fn helmholtz(kernel: &HelmholtzKernel, grid: &UnitGrid) -> Self {
        let pts = grid.points();
        let m = grid.side();
        let scale: Vec<f64> = (0..grid.n()).map(|i| kernel.sqrt_b(i)).collect();
        // Unscaled translation-invariant symbol: entry / (sqrt_b_i sqrt_b_j).
        let toeplitz = Toeplitz2D::new(m, |dx, dy| {
            if dx == 0 && dy == 0 {
                c64::ZERO
            } else {
                let (i, j) = offset_pair(m, dx, dy);
                kernel.entry(&pts, i, j).scale(1.0 / (scale[i] * scale[j]))
            }
        });
        let diag: Vec<c64> = (0..grid.n()).map(|i| kernel.diag(&pts, i)).collect();
        Self {
            n: grid.n(),
            toeplitz,
            diag,
            scale,
        }
    }
}

/// Pick a representative grid-index pair realizing the offset `(dx, dy)`.
fn offset_pair(m: usize, dx: i64, dy: i64) -> (usize, usize) {
    let jx = if dx >= 0 { 0i64 } else { -dx };
    let jy = if dy >= 0 { 0i64 } else { -dy };
    let ix = jx + dx;
    let iy = jy + dy;
    (
        (iy as usize) * m + ix as usize,
        (jy as usize) * m + jx as usize,
    )
}

impl<T: Scalar> FastKernelOp<T> {
    fn apply_impl(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n);
        // Scale, lift to complex, convolve, project back, unscale, add diag.
        let xc: Vec<c64> = if self.scale.is_empty() {
            x.iter().map(|v| c64::new(v.re(), v.im())).collect()
        } else {
            x.iter()
                .zip(self.scale.iter())
                .map(|(v, s)| c64::new(v.re() * s, v.im() * s))
                .collect()
        };
        let yc = self.toeplitz.apply(&xc);
        let mut y: Vec<T> = yc.into_iter().map(|v| T::from_re_im(v.re, v.im)).collect();
        if !self.scale.is_empty() {
            for (v, s) in y.iter_mut().zip(self.scale.iter()) {
                *v = v.scale(*s);
            }
        }
        for ((yi, xi), d) in y.iter_mut().zip(x.iter()).zip(self.diag.iter()) {
            *yi += *d * *xi;
        }
        y
    }
}

impl<T: Scalar> LinOp<T> for FastKernelOp<T> {
    fn dim(&self) -> usize {
        self.n
    }
    fn apply(&self, x: &[T]) -> Vec<T> {
        self.apply_impl(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble_dense;

    #[test]
    fn laplace_fast_matches_dense() {
        let grid = UnitGrid::new(16);
        let k = LaplaceKernel::new(&grid);
        let pts = grid.points();
        let a = assemble_dense(&k, &pts);
        let fast = FastKernelOp::laplace(&k, &grid);
        let x: Vec<f64> = (0..grid.n())
            .map(|i| ((i * 29) % 83) as f64 / 83.0 - 0.5)
            .collect();
        let want = a.matvec(&x);
        let got = fast.apply(&x);
        let scale: f64 = want.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-12 * scale.max(1e-10), "{g} vs {w}");
        }
    }

    #[test]
    fn helmholtz_fast_matches_dense() {
        let grid = UnitGrid::new(16);
        let k = HelmholtzKernel::new(&grid, 20.0);
        let pts = grid.points();
        let a = assemble_dense(&k, &pts);
        let fast = FastKernelOp::helmholtz(&k, &grid);
        let x: Vec<c64> = (0..grid.n())
            .map(|i| c64::new((i % 17) as f64 / 17.0 - 0.5, (i % 7) as f64 / 7.0))
            .collect();
        let want = a.matvec(&x);
        let got = fast.apply(&x);
        let scale: f64 = want.iter().map(|v| v.norm()).fold(0.0, f64::max);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((*g - *w).norm() < 1e-11 * scale, "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn offset_pair_realizes_offsets() {
        let m = 8;
        for &(dx, dy) in &[(0i64, 1i64), (3, -2), (-7, 7), (1, 0), (-1, -1)] {
            let (i, j) = offset_pair(m, dx, dy);
            assert!(i < m * m && j < m * m);
            let (ix, iy) = ((i % m) as i64, (i / m) as i64);
            let (jx, jy) = ((j % m) as i64, (j / m) as i64);
            assert_eq!((ix - jx, iy - jy), (dx, dy));
        }
    }
}
