//! Cross-crate integration tests: the unified `Solver` builder + FFT
//! operators + Krylov solvers + the simulated distributed runtime working
//! together, at the scale of the paper's small configurations.

use srsf::iterative::cg::cg;
use srsf::iterative::gmres::GmresOpts;
use srsf::prelude::*;

#[test]
fn laplace_end_to_end_direct_and_preconditioned() {
    let grid = UnitGrid::new(64); // N = 4096
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let fast = FastKernelOp::laplace(&kernel, &grid);
    let b = random_vector::<f64>(grid.n(), 1);

    let f = Solver::builder(&kernel, &pts).tol(1e-6).build().unwrap();
    // Direct solve accuracy against the FFT matvec.
    let x = f.solve(&b);
    let r = relative_residual(&fast, &x, &b);
    assert!(r < 1e-4, "direct relres {r:.2e}");
    // Preconditioned CG reaches 1e-12 in a near-constant iteration count.
    let res = pcg_factorized(&fast, &f, &b, 1e-12, 100);
    assert!(res.converged);
    assert!(res.iterations <= 15, "nit = {}", res.iterations);
}

#[test]
fn unpreconditioned_cg_is_painfully_slow_and_pcg_is_not() {
    // The paper's motivation: cond(A) ~ O(N) for the first-kind system.
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let fast = FastKernelOp::laplace(&kernel, &grid);
    let b = random_vector::<f64>(grid.n(), 2);
    let plain = cg(&fast, &b, 1e-10, 5000);
    let f = Solver::builder(&kernel, &pts).tol(1e-6).build().unwrap();
    let pre = pcg_factorized(&fast, &f, &b, 1e-10, 100);
    assert!(pre.converged);
    assert!(
        plain.iterations > 10 * pre.iterations,
        "CG {} vs PCG {}",
        plain.iterations,
        pre.iterations
    );
}

#[test]
fn helmholtz_gmres_preconditioning() {
    let grid = UnitGrid::new(64);
    let kappa = 20.0;
    let kernel = HelmholtzKernel::new(&grid, kappa);
    let pts = grid.points();
    let fast = FastKernelOp::helmholtz(&kernel, &grid);
    let b = random_vector::<c64>(grid.n(), 4);
    let f = Solver::builder(&kernel, &pts).tol(1e-6).build().unwrap();
    let pre = gmres_factorized(
        &fast,
        &f,
        &b,
        &GmresOpts {
            restart: 30,
            tol: 1e-12,
            max_iters: 100,
        },
    );
    assert!(pre.converged, "relres {:.2e}", pre.relres);
    assert!(pre.iterations <= 10, "nit = {}", pre.iterations);
}

/// The acceptance-criteria test: all three `Driver` variants produce a
/// solver consumed through the same `Factorized` interface, and their
/// solutions agree on the same Laplace problem.
#[test]
fn all_three_drivers_through_one_factorized_interface() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(grid.n(), 6);

    let solvers: Vec<Solver<f64>> = [
        Driver::Sequential,
        Driver::colored(2),
        Driver::distributed(4),
    ]
    .into_iter()
    .map(|driver| {
        Solver::builder(&kernel, &pts)
            .tol(1e-8)
            .leaf_size(16)
            .driver(driver)
            .build()
            .unwrap_or_else(|e| panic!("{driver:?} failed: {e}"))
    })
    .collect();

    // Consume every solver through the trait object, not the concrete type.
    let facts: Vec<&dyn Factorized<f64>> = solvers.iter().map(|s| s as _).collect();
    let xs: Vec<Vec<f64>> = facts.iter().map(|f| f.solve(&b)).collect();
    for (f, x) in facts.iter().zip(&xs) {
        assert_eq!(f.n(), grid.n());
        assert!(f.memory_bytes() > 0);
        assert!(f.stats().leaf_level >= 1);
        let rel = srsf::linalg::vecops::rel_diff(x, &xs[0]);
        assert!(rel < 1e-4, "driver solutions differ by {rel:.2e}");
    }
    // Only the distributed driver reports communication counters.
    assert!(solvers[0].comm_stats().is_none());
    assert!(solvers[1].comm_stats().is_none());
    let stats = solvers[2].comm_stats().expect("distributed comm stats");
    for s in &stats.per_rank {
        assert!(s.msgs_sent > 0);
    }
}

#[test]
fn distributed_build_with_solution_matches_gathered_solve() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(grid.n(), 6);

    let fs = Solver::builder(&kernel, &pts)
        .tol(1e-8)
        .leaf_size(16)
        .build()
        .unwrap();
    let (fd, xd) = Solver::builder(&kernel, &pts)
        .tol(1e-8)
        .leaf_size(16)
        .driver(Driver::distributed(4))
        .build_with_solution(&b)
        .unwrap();
    let xs = fs.solve(&b);
    // Same accuracy class; both within tolerance of each other's solution.
    let rel = srsf::linalg::vecops::rel_diff(&xd, &xs);
    assert!(rel < 1e-4, "dist vs seq solutions differ by {rel:.2e}");
    // The distributed in-world solve matches the gathered factorization's
    // local solve to roundoff.
    let xg = fd.solve(&b);
    assert!(srsf::linalg::vecops::rel_diff(&xd, &xg) < 1e-10);
}

#[test]
fn rank_growth_matches_figure9_shape() {
    // Figure 9's two claims at laptop scale: (a) Laplace skeleton ranks at
    // a fixed box population are constant as N grows (the O(N) basis);
    // (b) Helmholtz ranks at fixed N grow with the frequency.
    let mut laplace_leaf_ranks = Vec::new();
    for side in [32usize, 64] {
        let grid = UnitGrid::new(side);
        let pts = grid.points();
        let lk = LaplaceKernel::new(&grid);
        let lf = Solver::builder(&lk, &pts)
            .tol(1e-6)
            .leaf_size(16)
            .build()
            .unwrap();
        let leaf = lf.stats().leaf_level;
        laplace_leaf_ranks.push(lf.stats().avg_rank(leaf).unwrap());
    }
    let growth = laplace_leaf_ranks[1] / laplace_leaf_ranks[0];
    assert!(
        (0.8..1.25).contains(&growth),
        "Laplace leaf rank should be N-independent: {laplace_leaf_ranks:?}"
    );

    let grid = UnitGrid::new(64);
    let pts = grid.points();
    let mut helm_ranks = Vec::new();
    for kappa in [12.6f64, 50.0] {
        let hk = HelmholtzKernel::new(&grid, kappa);
        let hf = Solver::builder(&hk, &pts)
            .tol(1e-6)
            .leaf_size(16)
            .build()
            .unwrap();
        helm_ranks.push(hf.stats().avg_rank(3).unwrap());
    }
    assert!(
        helm_ranks[1] > 1.15 * helm_ranks[0],
        "higher frequency must need larger skeletons: {helm_ranks:?}"
    );
}

#[test]
fn solve_then_multiply_roundtrip_many_rhs() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let fast = FastKernelOp::laplace(&kernel, &grid);
    let f = Solver::builder(&kernel, &pts)
        .tol(1e-9)
        .leaf_size(32)
        .build()
        .unwrap();
    for seed in 0..8 {
        let b = random_vector::<f64>(grid.n(), seed);
        let x = f.solve(&b);
        assert!(relative_residual(&fast, &x, &b) < 1e-6, "seed {seed}");
    }
}

/// The deprecated free-function shims must keep old call sites compiling
/// and producing the same results as the builder.
#[test]
#[allow(deprecated)]
fn deprecated_free_functions_still_work() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let b = random_vector::<f64>(grid.n(), 9);
    let opts = FactorOpts::default().with_tol(1e-8).with_leaf_size(16);

    let f_old = factorize(&kernel, &pts, &opts).unwrap();
    let f_col = colored_factorize(&kernel, &pts, &opts, ColorScheme::Four, 2).unwrap();
    let pg = ProcessGrid::new(4);
    let (f_dist, stats) = dist_factorize(&kernel, &pts, &pg, &opts).unwrap();
    let (_, _, xd) = dist_factorize_and_solve(&kernel, &pts, &pg, &opts, Some(&b)).unwrap();

    let f_new = Solver::builder(&kernel, &pts).opts(opts).build().unwrap();
    let x_new = f_new.solve(&b);
    assert!(srsf::linalg::vecops::rel_diff(&f_old.solve(&b), &x_new) < 1e-12);
    assert!(srsf::linalg::vecops::rel_diff(&f_col.solve(&b), &x_new) < 1e-4);
    assert!(srsf::linalg::vecops::rel_diff(&f_dist.solve(&b), &x_new) < 1e-4);
    assert!(srsf::linalg::vecops::rel_diff(&xd.unwrap(), &x_new) < 1e-4);
    assert!(stats.total_msgs() > 0);
}
