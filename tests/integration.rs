//! Cross-crate integration tests: factorization + FFT operators + Krylov
//! solvers + the simulated distributed runtime working together, at the
//! scale of the paper's small configurations.

use srsf::geometry::procgrid::ProcessGrid;
use srsf::iterative::cg::{cg, pcg};
use srsf::iterative::gmres::{gmres, GmresOpts};
use srsf::prelude::*;

#[test]
fn laplace_end_to_end_direct_and_preconditioned() {
    let grid = UnitGrid::new(64); // N = 4096
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let fast = FastKernelOp::laplace(&kernel, &grid);
    let b = random_vector::<f64>(grid.n(), 1);

    let opts = FactorOpts { tol: 1e-6, ..FactorOpts::default() };
    let f = factorize(&kernel, &pts, &opts).unwrap();
    // Direct solve accuracy against the FFT matvec.
    let x = f.solve(&b);
    let r = relative_residual(&fast, &x, &b);
    assert!(r < 1e-4, "direct relres {r:.2e}");
    // Preconditioned CG reaches 1e-12 in a near-constant iteration count.
    let res = pcg(&fast, &f, &b, 1e-12, 100);
    assert!(res.converged);
    assert!(res.iterations <= 15, "nit = {}", res.iterations);
}

#[test]
fn unpreconditioned_cg_is_painfully_slow_and_pcg_is_not() {
    // The paper's motivation: cond(A) ~ O(N) for the first-kind system.
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let fast = FastKernelOp::laplace(&kernel, &grid);
    let b = random_vector::<f64>(grid.n(), 2);
    let plain = cg(&fast, &b, 1e-10, 5000);
    let opts = FactorOpts { tol: 1e-6, ..FactorOpts::default() };
    let f = factorize(&kernel, &pts, &opts).unwrap();
    let pre = pcg(&fast, &f, &b, 1e-10, 100);
    assert!(pre.converged);
    assert!(
        plain.iterations > 10 * pre.iterations,
        "CG {} vs PCG {}",
        plain.iterations,
        pre.iterations
    );
}

#[test]
fn helmholtz_gmres_preconditioning() {
    let grid = UnitGrid::new(64);
    let kappa = 20.0;
    let kernel = HelmholtzKernel::new(&grid, kappa);
    let pts = grid.points();
    let fast = FastKernelOp::helmholtz(&kernel, &grid);
    let b = random_vector::<c64>(grid.n(), 4);
    let opts = FactorOpts { tol: 1e-6, ..FactorOpts::default() };
    let f = factorize(&kernel, &pts, &opts).unwrap();
    let pre = gmres(&fast, Some(&f), &b, &GmresOpts { restart: 30, tol: 1e-12, max_iters: 100 });
    assert!(pre.converged, "relres {:.2e}", pre.relres);
    assert!(pre.iterations <= 10, "nit = {}", pre.iterations);
}

#[test]
fn distributed_matches_sequential_through_public_api() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let opts = FactorOpts { tol: 1e-8, leaf_size: 16, ..FactorOpts::default() };
    let b = random_vector::<f64>(grid.n(), 6);

    let fs = factorize(&kernel, &pts, &opts).unwrap();
    let (fd, stats, xd) =
        dist_factorize_and_solve(&kernel, &pts, &ProcessGrid::new(4), &opts, Some(&b)).unwrap();
    let xd = xd.unwrap();
    let xs = fs.solve(&b);
    // Same accuracy class; both within tolerance of each other's solution.
    let rel = srsf::linalg::vecops::rel_diff(&xd, &xs);
    assert!(rel < 1e-4, "dist vs seq solutions differ by {rel:.2e}");
    let xg = fd.solve(&b);
    assert!(srsf::linalg::vecops::rel_diff(&xd, &xg) < 1e-10);
    // Neighbor-only traffic: on a 2x2 grid every rank has <= 3 neighbors,
    // and everyone communicated.
    for s in &stats.per_rank {
        assert!(s.msgs_sent > 0);
    }
}

#[test]
fn rank_growth_matches_figure9_shape() {
    // Figure 9's two claims at laptop scale: (a) Laplace skeleton ranks at
    // a fixed box population are constant as N grows (the O(N) basis);
    // (b) Helmholtz ranks at fixed N grow with the frequency.
    let opts = FactorOpts { tol: 1e-6, leaf_size: 16, ..FactorOpts::default() };
    let mut laplace_leaf_ranks = Vec::new();
    for side in [32usize, 64] {
        let grid = UnitGrid::new(side);
        let pts = grid.points();
        let lk = LaplaceKernel::new(&grid);
        let lf = factorize(&lk, &pts, &opts).unwrap();
        let leaf = lf.stats().leaf_level;
        laplace_leaf_ranks.push(lf.stats().avg_rank(leaf).unwrap());
    }
    let growth = laplace_leaf_ranks[1] / laplace_leaf_ranks[0];
    assert!(
        (0.8..1.25).contains(&growth),
        "Laplace leaf rank should be N-independent: {laplace_leaf_ranks:?}"
    );

    let grid = UnitGrid::new(64);
    let pts = grid.points();
    let mut helm_ranks = Vec::new();
    for kappa in [12.6f64, 50.0] {
        let hk = HelmholtzKernel::new(&grid, kappa);
        let hf = factorize(&hk, &pts, &opts).unwrap();
        helm_ranks.push(hf.stats().avg_rank(3).unwrap());
    }
    assert!(
        helm_ranks[1] > 1.15 * helm_ranks[0],
        "higher frequency must need larger skeletons: {helm_ranks:?}"
    );
}

#[test]
fn solve_then_multiply_roundtrip_many_rhs() {
    let grid = UnitGrid::new(32);
    let kernel = LaplaceKernel::new(&grid);
    let pts = grid.points();
    let fast = FastKernelOp::laplace(&kernel, &grid);
    let opts = FactorOpts { tol: 1e-9, leaf_size: 32, ..FactorOpts::default() };
    let f = factorize(&kernel, &pts, &opts).unwrap();
    for seed in 0..8 {
        let b = random_vector::<f64>(grid.n(), seed);
        let x = f.solve(&b);
        assert!(relative_residual(&fast, &x, &b) < 1e-6, "seed {seed}");
    }
}
