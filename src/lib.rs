//! # srsf — strong recursive skeletonization factorization
//!
//! A distributed-memory-parallel **O(N) direct solver** for the dense linear
//! systems arising from planar integral equations, reproducing
//! *"An O(N) distributed-memory parallel direct solver for planar integral
//! equations"* (Liang, Chen, Martinsson, Biros; IPDPS 2024,
//! arXiv:2310.15458) in Rust.
//!
//! This facade crate re-exports the workspace's subsystems:
//!
//! * [`linalg`] — dense kernels: `Mat`, LU, CPQR, interpolative decomposition.
//! * [`special`] — Bessel/Hankel functions, Gauss–Legendre and adaptive
//!   quadrature, singular self-interaction integrals.
//! * [`fft`] — radix-2 FFT and circulant-embedded fast kernel matvec.
//! * [`geometry`] — quad-trees, near-field/distance-2 neighborhoods, proxy
//!   circles, process grids.
//! * [`kernels`] — the 2-D Laplace and Helmholtz (Lippmann–Schwinger)
//!   kernels and matrix assembly.
//! * [`runtime`] — the distributed-memory runtime: pluggable transports
//!   (ranks as threads, or as real OS processes over localhost TCP),
//!   explicit messages, communication counters, α–β network model.
//! * [`core`] — the factorization itself, behind the unified
//!   [`Solver`](prelude::Solver) builder: sequential, shared-memory
//!   box-colored, and distributed-memory process-colored drivers.
//! * [`iterative`] — CG / preconditioned CG / GMRES for the accuracy and
//!   iteration-count experiments; preconditioned by anything implementing
//!   [`Factorized`](prelude::Factorized).
//!
//! ## Quickstart
//!
//! One builder serves all three execution strategies of the paper — pick a
//! [`Driver`](prelude::Driver) and everything else stays the same:
//!
//! ```
//! use srsf::prelude::*;
//!
//! // 32x32 collocation grid for the 2-D Laplace volume integral equation.
//! let grid = UnitGrid::new(32);
//! let kernel = LaplaceKernel::new(&grid);
//! let f = Solver::builder(&kernel, &grid.points())
//!     .tol(1e-6)
//!     .driver(Driver::Sequential) // or Driver::colored(4), Driver::distributed(4)
//!     .build()
//!     .unwrap();
//!
//! // Solve against a random right-hand side and check the residual.
//! let b = random_vector::<f64>(grid.n(), 7);
//! let x = f.solve(&b);
//! let op = DenseKernelOp::new(&kernel, &grid.points());
//! assert!(relative_residual(&op, &x, &b) < 1e-4);
//! ```
//!
//! The built [`Solver`](prelude::Solver) implements
//! [`Factorized`](prelude::Factorized) and `LinOp`, so it drops into the
//! Krylov methods as a preconditioner regardless of the driver that built
//! it:
//!
//! ```no_run
//! # use srsf::prelude::*;
//! # let grid = UnitGrid::new(32);
//! # let kernel = LaplaceKernel::new(&grid);
//! # let f = Solver::builder(&kernel, &grid.points()).build().unwrap();
//! # let b = random_vector::<f64>(grid.n(), 7);
//! let fast = FastKernelOp::laplace(&kernel, &grid);
//! let res = pcg_factorized(&fast, &f, &b, 1e-12, 100);
//! assert!(res.converged);
//! ```

#![forbid(unsafe_code)]

pub use srsf_core as core;
pub use srsf_fft as fft;
pub use srsf_geometry as geometry;
pub use srsf_iterative as iterative;
pub use srsf_kernels as kernels;
pub use srsf_linalg as linalg;
pub use srsf_runtime as runtime;
pub use srsf_special as special;
pub use srsf_trace as trace;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use srsf_core::{
        colored::ColorScheme, sequential::Factorization, solver::SolverBuilder, stats::FactorStats,
        BaseTransport, Compression, CompressionTelemetry, Driver, FactorOpts, Factorized,
        FaultPlan, RankHealth, Solver, SrsfError, Transport,
    };
    // Deprecated free-function drivers, kept so pre-builder call sites
    // continue to compile against the prelude.
    #[allow(deprecated)]
    pub use srsf_core::{
        colored::colored_factorize,
        distributed::{dist_factorize, dist_factorize_and_solve},
        factorize,
    };
    pub use srsf_geometry::{grid::UnitGrid, point::Point, procgrid::ProcessGrid, tree::QuadTree};
    pub use srsf_iterative::{
        cg::{cg, pcg},
        gmres::{gmres, GmresOpts},
        op::{relative_residual, DenseOp, LinOp},
        precond::{gmres_factorized, pcg_factorized, FactorizedOp},
    };
    pub use srsf_kernels::{
        assemble::DenseKernelOp,
        fast_op::FastKernelOp,
        helmholtz::{gaussian_bump, HelmholtzKernel},
        kernel::Kernel,
        laplace::LaplaceKernel,
        util::random_vector,
    };
    pub use srsf_linalg::{c64, Mat, Scalar};
}
