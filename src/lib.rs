//! # srsf — strong recursive skeletonization factorization
//!
//! A distributed-memory-parallel **O(N) direct solver** for the dense linear
//! systems arising from planar integral equations, reproducing
//! *"An O(N) distributed-memory parallel direct solver for planar integral
//! equations"* (Liang, Chen, Martinsson, Biros; IPDPS 2024,
//! arXiv:2310.15458) in Rust.
//!
//! This facade crate re-exports the workspace's subsystems:
//!
//! * [`linalg`] — dense kernels: `Mat`, LU, CPQR, interpolative decomposition.
//! * [`special`] — Bessel/Hankel functions, Gauss–Legendre and adaptive
//!   quadrature, singular self-interaction integrals.
//! * [`fft`] — radix-2 FFT and circulant-embedded fast kernel matvec.
//! * [`geometry`] — quad-trees, near-field/distance-2 neighborhoods, proxy
//!   circles, process grids.
//! * [`kernels`] — the 2-D Laplace and Helmholtz (Lippmann–Schwinger)
//!   kernels and matrix assembly.
//! * [`runtime`] — a simulated distributed-memory runtime (ranks as threads,
//!   explicit messages, communication counters, α–β network model).
//! * [`core`] — the factorization itself: sequential, shared-memory
//!   box-colored, and distributed-memory process-colored variants.
//! * [`iterative`] — CG / preconditioned CG / GMRES for the accuracy and
//!   iteration-count experiments.
//!
//! ## Quickstart
//!
//! ```
//! use srsf::prelude::*;
//!
//! // 32x32 collocation grid for the 2-D Laplace volume integral equation.
//! let grid = UnitGrid::new(32);
//! let kernel = LaplaceKernel::new(&grid);
//! let opts = FactorOpts { tol: 1e-6, ..FactorOpts::default() };
//! let f = factorize(&kernel, &grid.points(), &opts).unwrap();
//!
//! // Solve against a random right-hand side and check the residual.
//! let b = random_vector::<f64>(grid.n(), 7);
//! let x = f.solve(&b);
//! let op = DenseKernelOp::new(&kernel, &grid.points());
//! assert!(relative_residual(&op, &x, &b) < 1e-4);
//! ```

pub use srsf_core as core;
pub use srsf_fft as fft;
pub use srsf_geometry as geometry;
pub use srsf_iterative as iterative;
pub use srsf_kernels as kernels;
pub use srsf_linalg as linalg;
pub use srsf_runtime as runtime;
pub use srsf_special as special;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use srsf_core::{
        colored::{colored_factorize, ColorScheme},
        distributed::{dist_factorize, dist_factorize_and_solve},
        factorize,
        sequential::Factorization,
        stats::FactorStats,
        FactorOpts,
    };
    pub use srsf_geometry::{grid::UnitGrid, point::Point, tree::QuadTree};
    pub use srsf_iterative::{
        cg::{cg, pcg},
        gmres::{gmres, GmresOpts},
        op::{relative_residual, DenseOp, LinOp},
    };
    pub use srsf_kernels::{
        assemble::DenseKernelOp,
        fast_op::FastKernelOp,
        helmholtz::{gaussian_bump, HelmholtzKernel},
        kernel::Kernel,
        laplace::LaplaceKernel,
        util::random_vector,
    };
    pub use srsf_linalg::{c64, Mat, Scalar};
}
