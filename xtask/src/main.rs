//! Repo automation tasks (`cargo xtask <task>`).
//!
//! Currently one task: `lint`, the project-invariant lint pass. See
//! [`lint`] for the rules. Run it as
//!
//! ```text
//! cargo xtask lint            # lint the workspace
//! cargo xtask lint --root DIR # lint another tree (used by CI's
//!                             # seeded-violation self-test)
//! ```
//!
//! Exit status: 0 clean, 1 violations found, 2 usage/IO error.

#![forbid(unsafe_code)]

mod lint;

use std::path::PathBuf;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut args = std::env::args().skip(1);
    let task = args.next();
    match task.as_deref() {
        Some("lint") => {}
        other => {
            eprintln!(
                "usage: cargo xtask lint [--root DIR]\n  (got: {:?})",
                other.unwrap_or("<none>")
            );
            return 2;
        }
    }
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory argument");
                    return 2;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                return 2;
            }
        }
    }
    // Default to the workspace root: cargo runs xtask with the
    // workspace as cwd (via the `cargo xtask` alias), and
    // CARGO_MANIFEST_DIR's parent works when invoked directly.
    let root = root.unwrap_or_else(|| {
        std::env::var_os("CARGO_MANIFEST_DIR")
            .map(|m| {
                let m = PathBuf::from(m);
                m.parent().map(PathBuf::from).unwrap_or(m)
            })
            .unwrap_or_else(|| PathBuf::from("."))
    });

    match lint::lint_root(&root) {
        Ok(violations) if violations.is_empty() => {
            eprintln!("xtask lint: clean ({})", root.display());
            0
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("xtask lint: {} violation(s)", violations.len());
            1
        }
        Err(e) => {
            eprintln!("xtask lint: error: {e}");
            2
        }
    }
}
