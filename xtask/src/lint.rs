//! The srsf project-invariant lint pass: source-level rules clippy
//! cannot know.
//!
//! Rules (each names the invariant it pins):
//!
//! * `panic-site` — no `unwrap()` / `expect()` / `panic!` in non-test
//!   library code unless the line (or one of the three lines above it)
//!   carries an `// INVARIANT:` comment stating why it cannot fire.
//!   CLI binaries under `src/bin/` are exempt (a tool may panic on
//!   operator error; a library embedded in a 64-rank run must not).
//! * `codec-getter` — the panicking `ByteReader::get_*` decoders are
//!   for codec-internal use; everything outside `codec.rs` must use the
//!   `try_get_*` / `Wire::decode` error paths (or justify with
//!   `// INVARIANT:`).
//! * `tags-describe` — every public `tags::` constant must be named by
//!   the diagnostic decoder (`describe` / `kind_name`), so a receive
//!   timeout can always print its tag in algorithm terms.
//! * `commstats-mutation` — the §IV message/word counters may only be
//!   mutated in the approved counting sites (`world.rs`, `stats.rs`):
//!   serve-envelope frames stay uncounted *by construction*.
//! * `metrics-mutation` — the serve-metrics counters
//!   (`solves_served` / `solves_failed`) may only be mutated inside the
//!   registry module (`metrics.rs`): every observation goes through
//!   `MetricsRegistry::observe_solve`, so a snapshot is always
//!   internally consistent.
//! * `forbid-unsafe` — every crate root carries
//!   `#![forbid(unsafe_code)]`.
//!
//! The scanner is deliberately line-based and dependency-free: it strips
//! strings and comments, skips `#[cfg(test)]` regions and doc comments,
//! and never parses Rust properly — the rules are chosen so that this
//! is enough.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
pub struct Violation {
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule slug.
    pub rule: &'static str,
    /// Human explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

/// The panicking decoder methods defined on `ByteReader` in `codec.rs`.
const CODEC_GETTERS: &[&str] = &[
    "get_u64",
    "get_f64",
    "get_scalar",
    "get_u64_slice",
    "get_scalar_slice",
    "get_mat",
];

/// The `CommStats` counter fields with approved mutation sites.
const COMMSTATS_FIELDS: &[&str] = &["msgs_sent", "words_sent", "compute_s", "wait_s"];

/// Files allowed to mutate `CommStats` fields: the send/recv counting
/// paths and the stats type itself.
const COMMSTATS_APPROVED: &[&str] = &["world.rs", "stats.rs"];

/// The serve-metrics counters with an approved mutation site.
const METRICS_FIELDS: &[&str] = &["solves_served", "solves_failed"];

/// The one file allowed to mutate them: the registry module itself
/// (every observation goes through `MetricsRegistry::observe_solve`).
const METRICS_APPROVED: &[&str] = &["metrics.rs"];

/// Lint every workspace source tree under `root`. Returns all
/// violations, sorted by file and line.
pub fn lint_root(root: &Path) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    let mut src_dirs: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let entries =
            std::fs::read_dir(&crates).map_err(|e| format!("{}: {e}", crates.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", crates.display()))?;
            let src = entry.path().join("src");
            if src.is_dir() {
                src_dirs.push(src);
            }
        }
    }
    for extra in ["src", "xtask/src"] {
        let dir = root.join(extra);
        if dir.is_dir() {
            src_dirs.push(dir);
        }
    }
    src_dirs.sort();
    for dir in &src_dirs {
        collect_rs(dir, &mut files)?;
    }

    let mut violations = Vec::new();
    for file in &files {
        let content =
            std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
        violations.extend(lint_source(&rel, &content));
    }
    // Crate roots: the entry point of every source tree found above.
    for dir in &src_dirs {
        for name in ["lib.rs", "main.rs"] {
            let entry = dir.join(name);
            if entry.is_file() {
                let content = std::fs::read_to_string(&entry)
                    .map_err(|e| format!("{}: {e}", entry.display()))?;
                let rel = entry.strip_prefix(root).unwrap_or(&entry).to_path_buf();
                violations.extend(check_forbid_unsafe(&rel, &content));
            }
        }
    }
    let tags = root.join("crates/runtime/src/tags.rs");
    if tags.is_file() {
        let content =
            std::fs::read_to_string(&tags).map_err(|e| format!("{}: {e}", tags.display()))?;
        let rel = tags.strip_prefix(root).unwrap_or(&tags).to_path_buf();
        violations.extend(check_tags_described(&rel, &content));
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        paths.push(entry.map_err(|e| format!("{}: {e}", dir.display()))?.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint one file's source text (path is used for reporting and for
/// file-scoped exemptions). Exposed for unit tests.
pub fn lint_source(path: &Path, content: &str) -> Vec<Violation> {
    let lines: Vec<&str> = content.lines().collect();
    let cleaned: Vec<String> = lines.iter().map(|l| clean_line(l)).collect();
    let in_test = test_region_mask(&cleaned);
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or_default();
    let is_codec = file_name == "codec.rs";
    let commstats_ok = COMMSTATS_APPROVED.contains(&file_name);
    let metrics_ok = METRICS_APPROVED.contains(&file_name);
    let is_bin = path
        .components()
        .any(|c| c.as_os_str() == "bin" || c.as_os_str() == "examples");

    let justified = |i: usize| {
        let lo = i.saturating_sub(3);
        lines[lo..=i].iter().any(|l| l.contains("INVARIANT:"))
    };

    let mut out = Vec::new();
    for (i, clean) in cleaned.iter().enumerate() {
        if in_test[i] || clean.trim().is_empty() {
            continue;
        }
        for pat in [".unwrap(", ".expect(", "panic!", "unimplemented!", "todo!"] {
            if !is_bin && clean.contains(pat) && !justified(i) {
                out.push(Violation {
                    file: path.to_path_buf(),
                    line: i + 1,
                    rule: "panic-site",
                    msg: format!(
                        "`{pat}` in library code: return a typed error \
                         (SrsfError/CodecError) or justify with `// INVARIANT: ...`",
                        pat = pat.trim_start_matches('.').trim_end_matches('(')
                    ),
                });
                break;
            }
        }
        if !is_codec {
            for getter in CODEC_GETTERS {
                if calls_method(clean, getter) && !justified(i) {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: i + 1,
                        rule: "codec-getter",
                        msg: format!(
                            "panicking decoder `{getter}` outside codec.rs: use \
                             `try_{getter}` / `Wire::decode` and propagate CodecError"
                        ),
                    });
                    break;
                }
            }
        }
        if !commstats_ok {
            for field in COMMSTATS_FIELDS {
                if mutates_field(clean, field) {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: i + 1,
                        rule: "commstats-mutation",
                        msg: format!(
                            "CommStats counter `{field}` mutated outside the approved \
                             counting sites ({})",
                            COMMSTATS_APPROVED.join(", ")
                        ),
                    });
                    break;
                }
            }
        }
        if !metrics_ok {
            for field in METRICS_FIELDS {
                if mutates_field(clean, field) || mutates_atomic(clean, field) {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: i + 1,
                        rule: "metrics-mutation",
                        msg: format!(
                            "metrics counter `{field}` mutated outside the registry \
                             module ({}): go through MetricsRegistry::observe_solve",
                            METRICS_APPROVED.join(", ")
                        ),
                    });
                    break;
                }
            }
        }
    }
    out
}

/// Check a crate root for the `#![forbid(unsafe_code)]` attribute.
pub fn check_forbid_unsafe(path: &Path, content: &str) -> Vec<Violation> {
    if content.contains("#![forbid(unsafe_code)]") {
        Vec::new()
    } else {
        vec![Violation {
            file: path.to_path_buf(),
            line: 1,
            rule: "forbid-unsafe",
            msg: "crate root is missing `#![forbid(unsafe_code)]`".into(),
        }]
    }
}

/// Check that every public `tags::` constant (except the `*_BASE` range
/// markers) is named by the diagnostic strings in the same file.
pub fn check_tags_described(path: &Path, content: &str) -> Vec<Violation> {
    let strings = string_literals(content);
    let mut out = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let trimmed = line.trim_start();
        let Some(rest) = trimmed.strip_prefix("pub const ") else {
            continue;
        };
        let Some(name) = rest.split(':').next().map(str::trim) else {
            continue;
        };
        if name.ends_with("_BASE") {
            continue;
        }
        let display = name
            .strip_prefix("KIND_")
            .or_else(|| name.strip_prefix("TAG_SERVE_"))
            .or_else(|| name.strip_prefix("TAG_"))
            .unwrap_or(name);
        if !strings.iter().any(|s| s.contains(display)) {
            out.push(Violation {
                file: path.to_path_buf(),
                line: i + 1,
                rule: "tags-describe",
                msg: format!(
                    "tag constant `{name}` is not named by describe()/kind_name(): \
                     a hang on this tag would be undiagnosable"
                ),
            });
        }
    }
    out
}

/// `true` if the line calls `.name(` or `.name::<`.
fn calls_method(clean: &str, name: &str) -> bool {
    let mut rest = clean;
    while let Some(pos) = rest.find(name) {
        let before_dot = pos > 0 && rest.as_bytes()[pos - 1] == b'.';
        let after = &rest[pos + name.len()..];
        if before_dot && (after.starts_with('(') || after.starts_with("::<")) {
            return true;
        }
        rest = &rest[pos + name.len()..];
    }
    false
}

/// `true` if the line assigns to `.field` (`=`, `+=`, `-=`, `*=`), but
/// not a comparison (`==`).
fn mutates_field(clean: &str, field: &str) -> bool {
    let mut rest = clean;
    let probe = format!(".{field}");
    while let Some(pos) = rest.find(&probe) {
        let after = rest[pos + probe.len()..].trim_start();
        if let Some(next) = after.strip_prefix(['+', '-', '*']) {
            if next.starts_with('=') {
                return true;
            }
        }
        if after.starts_with('=') && !after.starts_with("==") {
            return true;
        }
        rest = &rest[pos + probe.len()..];
    }
    false
}

/// `true` if the line writes to an atomic stored in `.field`
/// (`.field.store(`, `.field.fetch_add(`, `.field.fetch_sub(`). Loads
/// and comparisons are fine.
fn mutates_atomic(clean: &str, field: &str) -> bool {
    let mut rest = clean;
    let probe = format!(".{field}.");
    while let Some(pos) = rest.find(&probe) {
        let after = &rest[pos + probe.len()..];
        if ["store(", "fetch_add(", "fetch_sub("]
            .iter()
            .any(|m| after.starts_with(m))
        {
            return true;
        }
        rest = &rest[pos + probe.len()..];
    }
    false
}

/// Blank out string literals, char literals, and comments; drop doc
/// comments entirely. Good enough for pattern scanning — not a parser.
fn clean_line(line: &str) -> String {
    let trimmed = line.trim_start();
    if trimmed.starts_with("///") || trimmed.starts_with("//!") {
        return String::new();
    }
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    let mut in_str = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_str {
            if c == '\\' {
                i += 2;
                out.push(' ');
                out.push(' ');
                continue;
            }
            if c == '"' {
                in_str = false;
                out.push('"');
            } else {
                out.push(' ');
            }
            i += 1;
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
                i += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break,
            '\'' if i + 2 < bytes.len() && bytes[i + 2] == b'\'' => {
                // A simple char literal like 'x'; lifetimes fall through.
                out.push_str("   ");
                i += 3;
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Extract the contents of all double-quoted string literals.
fn string_literals(content: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current: Option<String> = None;
    let bytes = content.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match &mut current {
            Some(s) => {
                if c == '\\' && i + 1 < bytes.len() {
                    s.push(bytes[i + 1] as char);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    out.push(current.take().unwrap_or_default());
                } else {
                    s.push(c);
                }
                i += 1;
            }
            None => {
                if c == '"' {
                    current = Some(String::new());
                }
                i += 1;
            }
        }
    }
    out
}

/// Mark every line inside a `#[cfg(test)]` item (brace-balanced from
/// the attribute's first `{`).
fn test_region_mask(cleaned: &[String]) -> Vec<bool> {
    let mut mask = vec![false; cleaned.len()];
    let mut i = 0;
    while i < cleaned.len() {
        if !cleaned[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Mark until the braces of the following item balance out.
        let mut depth = 0usize;
        let mut opened = false;
        let mut j = i;
        while j < cleaned.len() {
            mask[j] = true;
            for b in cleaned[j].bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            j += 1;
            if opened && depth == 0 {
                break;
            }
        }
        i = j;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Violation> {
        lint_source(Path::new("crates/demo/src/lib.rs"), src)
    }

    #[test]
    fn flags_unwrap_without_invariant() {
        let v = lint("fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "panic-site");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn accepts_justified_unwrap() {
        let v = lint(
            "fn f(x: Option<u32>) -> u32 {\n    // INVARIANT: x was checked non-empty above\n    \
             x.unwrap()\n}\n",
        );
        assert!(v.is_empty(), "{}", v[0]);
    }

    #[test]
    fn ignores_tests_docs_and_strings() {
        let src = r#"
/// Call `.unwrap()` at your peril.
fn f() -> &'static str {
    "never panic!()"
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
    }
}
"#;
        assert!(lint(src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let v = lint("fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or_else(|| 3)\n}\n");
        assert!(v.is_empty());
    }

    #[test]
    fn flags_codec_getter_outside_codec() {
        let v = lint("fn f(r: &mut ByteReader) -> u64 {\n    r.get_u64()\n}\n");
        assert!(v.iter().any(|v| v.rule == "codec-getter"));
        let v = lint("fn f(r: &mut ByteReader) -> f64 {\n    r.get_scalar::<f64>()\n}\n");
        assert!(v.iter().any(|v| v.rule == "codec-getter"));
    }

    #[test]
    fn codec_getters_allowed_in_codec_rs() {
        let v = lint_source(
            Path::new("crates/runtime/src/codec.rs"),
            "fn f(r: &mut ByteReader) -> u64 {\n    r.get_u64()\n}\n",
        );
        assert!(v.iter().all(|v| v.rule != "codec-getter"));
    }

    #[test]
    fn flags_commstats_mutation_outside_approved() {
        let v = lint("fn f(s: &mut CommStats) {\n    s.msgs_sent += 1;\n}\n");
        assert!(v.iter().any(|v| v.rule == "commstats-mutation"));
        // Comparison is not mutation.
        let v = lint("fn f(s: &CommStats) -> bool {\n    s.msgs_sent == 1\n}\n");
        assert!(v.iter().all(|v| v.rule != "commstats-mutation"));
    }

    #[test]
    fn commstats_mutation_allowed_in_world_rs() {
        let v = lint_source(
            Path::new("crates/runtime/src/world.rs"),
            "fn f(s: &mut CommStats) {\n    s.msgs_sent += 1;\n}\n",
        );
        assert!(v.iter().all(|v| v.rule != "commstats-mutation"));
    }

    #[test]
    fn flags_metrics_mutation_outside_registry() {
        let v = lint("fn f(m: &MetricsRegistry) {\n    m.solves_served.fetch_add(1, O);\n}\n");
        assert!(v.iter().any(|v| v.rule == "metrics-mutation"));
        let v = lint("fn f(s: &mut MetricsSnapshot) {\n    s.solves_failed = 0;\n}\n");
        assert!(v.iter().any(|v| v.rule == "metrics-mutation"));
        // Loads and comparisons are not mutation.
        let v = lint("fn f(s: &MetricsSnapshot) -> bool {\n    s.solves_served == 1\n}\n");
        assert!(v.iter().all(|v| v.rule != "metrics-mutation"));
        let v = lint("fn f(m: &MetricsRegistry) -> u64 {\n    m.solves_served.load(O)\n}\n");
        assert!(v.iter().all(|v| v.rule != "metrics-mutation"));
    }

    #[test]
    fn metrics_mutation_allowed_in_metrics_rs() {
        let v = lint_source(
            Path::new("crates/trace/src/metrics.rs"),
            "fn f(m: &MetricsRegistry) {\n    m.solves_served.fetch_add(1, O);\n}\n",
        );
        assert!(v.iter().all(|v| v.rule != "metrics-mutation"));
    }

    #[test]
    fn forbid_unsafe_missing_and_present() {
        let p = Path::new("crates/demo/src/lib.rs");
        assert_eq!(check_forbid_unsafe(p, "pub fn f() {}\n").len(), 1);
        assert!(check_forbid_unsafe(p, "#![forbid(unsafe_code)]\npub fn f() {}\n").is_empty());
    }

    #[test]
    fn tags_constants_must_be_described() {
        let p = Path::new("crates/runtime/src/tags.rs");
        let described = "pub const KIND_FOLD: u32 = 1;\nfn kind_name() -> &'static str { \
                         \"FOLD\" }\n";
        assert!(check_tags_described(p, described).is_empty());
        let undescribed = "pub const KIND_FOLD: u32 = 1;\npub const SERVE_BASE: u32 = 9;\n";
        let v = check_tags_described(p, undescribed);
        assert_eq!(v.len(), 1, "BASE constants are exempt, KIND_FOLD is not");
        assert_eq!(v[0].rule, "tags-describe");
    }
}
